"""Unit tests for the UIP and DU recovery views (Section 5)."""

import pytest

from repro.core.events import abort, commit, inv, invoke, op, respond
from repro.core.history import History
from repro.core.views import DU, UIP
from repro.experiments.examples import section_5_history


def history_with_abort():
    """A commits deposit(5); B withdraws 3 then aborts; C deposits 1 (active)."""
    return History.of(
        invoke(inv("deposit", 5), "BA", "A"),
        respond("ok", "BA", "A"),
        commit("BA", "A"),
        invoke(inv("withdraw", 3), "BA", "B"),
        respond("ok", "BA", "B"),
        abort("BA", "B"),
        invoke(inv("deposit", 1), "BA", "C"),
        respond("ok", "BA", "C"),
    )


class TestUIP:
    def test_paper_example(self):
        h = section_5_history()
        expected = (op("BA", "deposit", 5), op("BA", "withdraw", 3))
        assert UIP(h, "B") == expected

    def test_same_view_for_every_transaction(self):
        h = section_5_history()
        assert UIP(h, "B") == UIP(h, "C")

    def test_excludes_aborted(self):
        h = history_with_abort()
        assert UIP(h, "C") == (op("BA", "deposit", 5), op("BA", "deposit", 1))

    def test_execution_order_preserved(self):
        h = History.of(
            invoke(inv("a"), "X", "A"),
            invoke(inv("b"), "X", "B"),
            respond("ok", "X", "B"),
            respond("ok", "X", "A"),
            commit("X", "B"),
        )
        assert [o.name for o in UIP(h, "A")] == ["b", "a"]

    def test_rejects_finished_transaction(self):
        h = section_5_history()
        h = h.append(commit("BA", "B"))
        with pytest.raises(ValueError):
            UIP(h, "B")

    def test_empty_history(self):
        assert UIP(History(), "A") == ()


class TestDU:
    def test_paper_example_own_ops_visible(self):
        h = section_5_history()
        assert DU(h, "B") == (op("BA", "deposit", 5), op("BA", "withdraw", 3))

    def test_paper_example_other_active_invisible(self):
        h = section_5_history()
        assert DU(h, "C") == (op("BA", "deposit", 5),)

    def test_excludes_aborted_automatically(self):
        h = history_with_abort()
        assert DU(h, "C") == (op("BA", "deposit", 5), op("BA", "deposit", 1))

    def test_commit_order_not_execution_order(self):
        """DU replays committed transactions in commit order."""
        h = History.of(
            invoke(inv("a"), "X", "A"),
            respond("ok", "X", "A"),
            invoke(inv("b"), "X", "B"),
            respond("ok", "X", "B"),
            commit("X", "B"),  # B commits first although A executed first
            commit("X", "A"),
        )
        assert [o.name for o in DU(h, "C")] == ["b", "a"]

    def test_uip_uses_execution_order_same_history(self):
        h = History.of(
            invoke(inv("a"), "X", "A"),
            respond("ok", "X", "A"),
            invoke(inv("b"), "X", "B"),
            respond("ok", "X", "B"),
            commit("X", "B"),
            commit("X", "A"),
        )
        assert [o.name for o in UIP(h, "C")] == ["a", "b"]

    def test_rejects_finished_transaction(self):
        h = History.of(commit("X", "A"))
        with pytest.raises(ValueError):
            DU(h, "A")

    def test_view_names(self):
        assert UIP.name == "UIP"
        assert DU.name == "DU"


class TestViewDivergence:
    def test_views_agree_when_no_active_others_and_commit_order_matches(self):
        h = section_5_history()
        assert UIP(h, "B") == DU(h, "B")

    def test_views_diverge_on_active_others(self):
        h = section_5_history()
        assert UIP(h, "C") != DU(h, "C")
