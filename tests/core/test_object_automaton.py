"""Unit tests for the executable I(X, Spec, View, Conflict) automaton."""

import random

import pytest

from repro.adts import BankAccount, SemiQueue
from repro.core.conflict import EmptyConflict, TotalConflict
from repro.core.events import commit, inv, invoke, respond
from repro.core.history import History, IllFormedHistoryError
from repro.core.object_automaton import (
    ObjectAutomaton,
    ResponseNotEnabled,
    TransactionProgram,
    generate_trace,
)
from repro.core.views import DU, UIP


@pytest.fixture
def ba():
    return BankAccount(domain=(1, 2))


def uip_nrbc(ba):
    return ObjectAutomaton(ba, UIP, ba.nrbc_conflict())


class TestStepping:
    def test_invocation_always_accepted(self, ba):
        a = uip_nrbc(ba)
        a.invoke("A", inv("deposit", 1))
        assert a.pending_invocation("A") == inv("deposit", 1)

    def test_response_requires_pending(self, ba):
        a = uip_nrbc(ba)
        with pytest.raises(ResponseNotEnabled) as excinfo:
            a.step(respond("ok", "BA", "A"))
        assert excinfo.value.reason == "no-pending"

    def test_legal_response_accepted(self, ba):
        a = uip_nrbc(ba)
        a.invoke("A", inv("deposit", 1))
        operation = a.respond("A", "ok")
        assert operation == ba.deposit(1)

    def test_illegal_response_rejected(self, ba):
        a = uip_nrbc(ba)
        a.invoke("A", inv("withdraw", 1))
        with pytest.raises(ResponseNotEnabled) as excinfo:
            a.respond("A", "ok")  # balance 0: must answer "no"
        assert excinfo.value.reason == "not-legal"

    def test_conflicting_response_rejected(self, ba):
        a = uip_nrbc(ba)
        a.invoke("A", inv("balance"))
        a.respond("A", 0)
        a.invoke("B", inv("deposit", 1))
        with pytest.raises(ResponseNotEnabled) as excinfo:
            a.respond("B", "ok")  # (deposit, balance) ∈ NRBC
        assert excinfo.value.reason == "conflict"

    def test_commit_releases_locks(self, ba):
        a = uip_nrbc(ba)
        a.invoke("A", inv("balance"))
        a.respond("A", 0)
        a.commit("A")
        a.invoke("B", inv("deposit", 1))
        a.respond("B", "ok")  # no conflict anymore

    def test_abort_releases_locks(self, ba):
        a = uip_nrbc(ba)
        a.invoke("A", inv("balance"))
        a.respond("A", 0)
        a.abort("A")
        a.invoke("B", inv("deposit", 1))
        a.respond("B", "ok")

    def test_uip_view_sees_aborted_effects_removed(self, ba):
        a = uip_nrbc(ba)
        a.invoke("A", inv("deposit", 2))
        a.respond("A", "ok")
        a.abort("A")
        a.invoke("B", inv("balance"))
        assert a.enabled_responses("B") == {0}

    def test_wrong_object_event_rejected(self, ba):
        a = uip_nrbc(ba)
        with pytest.raises(ValueError):
            a.step(commit("OTHER", "A"))


class TestEnabledResponses:
    def test_no_pending_no_responses(self, ba):
        assert uip_nrbc(ba).enabled_responses("A") == frozenset()

    def test_withdraw_responses_follow_view(self, ba):
        a = uip_nrbc(ba)
        a.invoke("A", inv("deposit", 2))
        a.respond("A", "ok")
        a.commit("A")
        a.invoke("B", inv("withdraw", 1))
        assert a.enabled_responses("B") == {"ok"}

    def test_blocked_responses_reported(self, ba):
        a = uip_nrbc(ba)
        a.invoke("A", inv("balance"))
        a.respond("A", 0)
        a.invoke("B", inv("deposit", 1))
        assert a.enabled_responses("B") == frozenset()
        assert a.blocked_responses("B") == {"ok"}

    def test_total_conflict_serializes(self, ba):
        a = ObjectAutomaton(ba, UIP, TotalConflict())
        a.invoke("A", inv("deposit", 1))
        a.respond("A", "ok")
        a.invoke("B", inv("deposit", 1))
        assert a.enabled_responses("B") == frozenset()

    def test_du_view_hides_other_active(self, ba):
        a = ObjectAutomaton(ba, DU, EmptyConflict())
        a.invoke("A", inv("deposit", 2))
        a.respond("A", "ok")
        a.invoke("B", inv("balance"))
        assert a.enabled_responses("B") == {0}  # A's deposit invisible under DU

    def test_uip_view_shows_other_active(self, ba):
        a = ObjectAutomaton(ba, UIP, EmptyConflict())
        a.invoke("A", inv("deposit", 2))
        a.respond("A", "ok")
        a.invoke("B", inv("balance"))
        assert a.enabled_responses("B") == {2}

    def test_nondeterministic_responses(self):
        sq = SemiQueue(domain=("a", "b"))
        a = ObjectAutomaton(sq, UIP, sq.nrbc_conflict())
        for item in ("a", "b"):
            a.invoke("A", inv("enq", item))
            a.respond("A", "ok")
        a.commit("A")
        a.invoke("B", inv("deq"))
        assert a.enabled_responses("B") == {"a", "b"}

    def test_try_respond_deterministic(self, ba):
        a = uip_nrbc(ba)
        a.invoke("A", inv("deposit", 1))
        operation = a.try_respond("A")
        assert operation == ba.deposit(1)

    def test_try_respond_blocked_returns_none(self, ba):
        a = uip_nrbc(ba)
        a.invoke("A", inv("balance"))
        a.respond("A", 0)
        a.invoke("B", inv("deposit", 1))
        assert a.try_respond("B") is None


class TestAcceptance:
    def test_accepts_own_trace(self, ba):
        a = uip_nrbc(ba)
        a.invoke("A", inv("deposit", 1))
        a.respond("A", "ok")
        a.commit("A")
        assert ObjectAutomaton.accepts(ba, UIP, ba.nrbc_conflict(), a.history)

    def test_rejects_conflicting_history(self, ba):
        h = History.of(
            invoke(inv("balance"), "BA", "A"),
            respond(0, "BA", "A"),
            invoke(inv("deposit", 1), "BA", "B"),
            respond("ok", "BA", "B"),
        )
        reason = ObjectAutomaton.explain_rejection(ba, UIP, ba.nrbc_conflict(), h)
        assert reason is not None and "conflict" in reason

    def test_rejects_illegal_response(self, ba):
        h = History.of(
            invoke(inv("withdraw", 1), "BA", "A"),
            respond("ok", "BA", "A"),
        )
        reason = ObjectAutomaton.explain_rejection(ba, UIP, EmptyConflict(), h)
        assert reason is not None and "not-legal" in reason

    def test_rejects_ill_formed(self, ba):
        h = History([commit("BA", "A"), commit("BA", "A")], validate=False)
        reason = ObjectAutomaton.explain_rejection(ba, UIP, EmptyConflict(), h)
        assert reason is not None and "ill-formed" in reason

    def test_rejects_response_without_pending(self, ba):
        h = History([respond("ok", "BA", "A")], validate=False)
        reason = ObjectAutomaton.explain_rejection(ba, UIP, EmptyConflict(), h)
        assert reason is not None and "no-pending" in reason


class TestGenerateTrace:
    def test_trace_is_schedule_of_automaton(self, ba):
        rng = random.Random(0)
        programs = [
            TransactionProgram("T1", (inv("deposit", 1), inv("withdraw", 1))),
            TransactionProgram("T2", (inv("deposit", 2), inv("balance"))),
        ]
        conflict = ba.nrbc_conflict()
        h = generate_trace(ba, UIP, conflict, programs, rng)
        assert ObjectAutomaton.accepts(ba, UIP, conflict, h)

    def test_trace_terminates_all_transactions(self, ba):
        rng = random.Random(1)
        programs = [
            TransactionProgram("T%d" % i, (inv("deposit", 1),)) for i in range(4)
        ]
        h = generate_trace(ba, UIP, ba.nrbc_conflict(), programs, rng)
        finished = h.committed() | h.aborted()
        assert finished == {"T0", "T1", "T2", "T3"}

    def test_trace_with_aborts(self, ba):
        rng = random.Random(2)
        programs = [
            TransactionProgram("T%d" % i, (inv("deposit", 1), inv("balance")))
            for i in range(3)
        ]
        h = generate_trace(
            ba, UIP, ba.nrbc_conflict(), programs, rng, abort_probability=0.5
        )
        assert len(h.aborted()) >= 1

    def test_deadlocked_programs_abort_a_victim(self, ba):
        """Under TotalConflict with interleaved starts, someone must abort."""
        rng = random.Random(3)
        programs = [
            TransactionProgram("T%d" % i, (inv("deposit", 1), inv("deposit", 2)))
            for i in range(3)
        ]
        h = generate_trace(ba, UIP, TotalConflict(), programs, rng)
        finished = h.committed() | h.aborted()
        assert finished == {"T0", "T1", "T2"}
