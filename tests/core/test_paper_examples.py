"""Machine-checks of every worked example in the paper (Sections 3–5)."""

import pytest

from repro.adts import BankAccount
from repro.core.atomicity import (
    find_serialization_order,
    is_atomic,
    is_dynamic_atomic,
    serializable_in_order,
)
from repro.core.views import DU, UIP
from repro.experiments.examples import (
    section_3_2_sequences,
    section_3_3_history,
    section_3_4_perturbed_history,
    section_5_history,
)


@pytest.fixture(scope="module")
def ba():
    return BankAccount()


class TestSection32:
    """Spec(BA) includes the first worked sequence but not the second."""

    def test_legal_sequence_in_spec(self, ba):
        legal, _illegal = section_3_2_sequences(ba)
        assert ba.is_legal(legal)

    def test_illegal_sequence_not_in_spec(self, ba):
        _legal, illegal = section_3_2_sequences(ba)
        assert not ba.is_legal(illegal)

    def test_prefixes_of_legal_sequence(self, ba):
        legal, _ = section_3_2_sequences(ba)
        for i in range(len(legal) + 1):
            assert ba.is_legal(legal[:i])

    def test_withdraw_ok_iff_funds(self, ba):
        """'withdraw returns ok iff the balance is not less than the argument'."""
        assert ba.responses((ba.deposit(5),), ba.withdraw_ok(3).invocation) == {"ok"}
        assert ba.responses((ba.deposit(2),), ba.withdraw_ok(3).invocation) == {"no"}


class TestSection33:
    """The example history is atomic, serializable in the order A-B-C."""

    def test_well_formed(self):
        section_3_3_history()

    def test_contains_only_committed(self, ba):
        h = section_3_3_history()
        assert h.active() == frozenset()
        assert h.committed() == {"A", "B", "C"}

    def test_serializable_in_a_b_c(self, ba):
        h = section_3_3_history()
        assert serializable_in_order(h, ["A", "B", "C"], ba)

    def test_atomic(self, ba):
        assert is_atomic(section_3_3_history(), ba)

    def test_a_b_c_is_the_unique_order(self, ba):
        h = section_3_3_history()
        assert find_serialization_order(h, ba) == ("A", "B", "C")


class TestSection34:
    """Dynamic atomicity of the example and its perturbation."""

    def test_example_dynamic_atomic(self, ba):
        assert is_dynamic_atomic(section_3_3_history(), ba)

    def test_precedes_chain(self):
        h = section_3_3_history()
        precedes = h.precedes()
        assert ("A", "B") in precedes
        assert ("B", "C") in precedes

    def test_perturbed_not_dynamic_atomic(self, ba):
        """With B's response before A's commit, (A, B) leaves precedes and
        the unserializable order B-A-C becomes admissible."""
        h = section_3_4_perturbed_history()
        assert ("A", "B") not in h.precedes()
        assert not is_dynamic_atomic(h, ba)

    def test_perturbed_still_atomic(self, ba):
        assert is_atomic(section_3_4_perturbed_history(), ba)

    def test_perturbed_fails_exactly_on_b_first_orders(self, ba):
        h = section_3_4_perturbed_history()
        assert not serializable_in_order(h, ["B", "A", "C"], ba)
        assert serializable_in_order(h, ["A", "B", "C"], ba)


class TestSection5Views:
    """UIP(H,B) = DU(H,B) = deposit·withdraw; DU(H,C) = deposit only."""

    def test_uip_b(self, ba):
        h = section_5_history()
        assert UIP(h, "B") == (ba.deposit(5), ba.withdraw_ok(3))

    def test_uip_same_for_any_other(self, ba):
        h = section_5_history()
        assert UIP(h, "C") == UIP(h, "B")

    def test_du_b_sees_own_ops(self, ba):
        h = section_5_history()
        assert DU(h, "B") == (ba.deposit(5), ba.withdraw_ok(3))

    def test_du_c_sees_committed_only(self, ba):
        h = section_5_history()
        assert DU(h, "C") == (ba.deposit(5),)

    def test_views_correspond_to_balances(self, ba):
        """UIP view: balance 2 for anyone; DU view for C: balance 5."""
        h = section_5_history()
        assert ba.states_after(UIP(h, "C")) == frozenset({2})
        assert ba.states_after(DU(h, "C")) == frozenset({5})
