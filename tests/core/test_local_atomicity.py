"""Tests for local atomicity: Theorem 2 and the motivation behind it."""

import random

import pytest

from repro.core.atomicity import (
    is_atomic,
    is_dynamic_atomic,
    is_serializable,
    serializable_in_order,
)
from repro.core.events import inv
from repro.experiments.local_atomicity import (
    incompatible_serialization_histories,
    incompatible_specs,
    mixed_recovery_system,
    mixed_system_specs,
)
from repro.runtime import run_scripts
from repro.runtime.scheduler import TransactionScript


class TestIncompatibleObjects:
    """Serializability alone is not a local atomicity property."""

    def test_each_object_locally_serializable(self):
        _, hx, hy = incompatible_serialization_histories()
        specs = incompatible_specs()
        assert is_serializable(hx, specs["X"])
        assert is_serializable(hy, specs["Y"])

    def test_forced_opposite_orders(self):
        _, hx, hy = incompatible_serialization_histories()
        specs = incompatible_specs()
        assert serializable_in_order(hx, ["A", "B"], specs["X"])
        assert not serializable_in_order(hx, ["B", "A"], specs["X"])
        assert serializable_in_order(hy, ["B", "A"], specs["Y"])
        assert not serializable_in_order(hy, ["A", "B"], specs["Y"])

    def test_global_history_not_atomic(self):
        h, _, _ = incompatible_serialization_histories()
        assert not is_atomic(h, incompatible_specs())

    def test_local_histories_not_dynamic_atomic(self):
        """Dynamic atomicity catches the problem *locally*: each object's
        history admits a precedes-consistent order that fails."""
        _, hx, hy = incompatible_serialization_histories()
        specs = incompatible_specs()
        assert not is_dynamic_atomic(hx, specs["X"])
        assert not is_dynamic_atomic(hy, specs["Y"])

    def test_global_history_well_formed(self):
        h, _, _ = incompatible_serialization_histories()
        from repro.core.history import History

        History(h.events)  # validates


class TestMixedRecoverySystem:
    """Theorem 2's modularity: different methods per object, global atomicity."""

    def scripts(self, rng: random.Random):
        scripts = []
        for i in range(5):
            steps = []
            for _ in range(2):
                which = rng.choice(["BA", "SET", "REG"])
                if which == "BA":
                    steps.append(("BA", inv(rng.choice(["deposit", "withdraw"]), rng.choice([1, 2]))))
                elif which == "SET":
                    steps.append(("SET", inv(rng.choice(["insert", "delete", "member"]), rng.choice(["a", "b"]))))
                else:
                    if rng.random() < 0.5:
                        steps.append(("REG", inv("read")))
                    else:
                        steps.append(("REG", inv("write", rng.choice(["u", "v"]))))
            scripts.append(TransactionScript("T%d" % i, tuple(steps)))
        return scripts

    @pytest.mark.parametrize("seed", range(6))
    def test_mixed_system_globally_dynamic_atomic(self, seed):
        system = mixed_recovery_system()
        scripts = self.scripts(random.Random(seed))
        metrics = run_scripts(system, scripts, seed=seed)
        assert metrics.committed >= 1
        assert is_dynamic_atomic(system.history(), mixed_system_specs())

    @pytest.mark.parametrize("seed", range(3))
    def test_per_object_projections_dynamic_atomic(self, seed):
        """Lemma 1 in action: local projections are dynamic atomic too."""
        system = mixed_recovery_system()
        run_scripts(system, self.scripts(random.Random(seed)), seed=seed)
        h = system.history()
        specs = mixed_system_specs()
        for obj in h.objects():
            assert is_dynamic_atomic(h.project_objects(obj), specs[obj])
