"""Unit tests for the looks-like / equieffective machinery (Section 6.1)."""

import pytest

from repro.adts import BankAccount
from repro.core.equieffective import (
    equieffective,
    find_equieffective_violation,
    find_looks_like_violation,
    legal_continuations,
    looks_like,
)
from repro.core.events import op
from repro.core.serial_spec import LanguageSpec


@pytest.fixture
def ba():
    return BankAccount(domain=(1, 2))


@pytest.fixture
def alphabet(ba):
    return ba.invocation_alphabet()


class TestLegalContinuations:
    def test_includes_empty(self, ba, alphabet):
        gammas = list(legal_continuations(ba, (), alphabet, 1))
        assert () in gammas

    def test_depth_zero_only_empty(self, ba, alphabet):
        assert list(legal_continuations(ba, (), alphabet, 0)) == [()]

    def test_continuations_are_legal(self, ba, alphabet):
        prefix = (ba.deposit(2),)
        for gamma in legal_continuations(ba, prefix, alphabet, 2):
            assert ba.is_legal(prefix + gamma)

    def test_shortest_first(self, ba, alphabet):
        lengths = [len(g) for g in legal_continuations(ba, (), alphabet, 3)]
        assert lengths == sorted(lengths)

    def test_illegal_prefix_yields_nothing(self, ba, alphabet):
        prefix = (ba.withdraw_ok(1),)  # balance 0: cannot succeed
        assert list(legal_continuations(ba, prefix, alphabet, 2)) == []

    def test_respects_withdraw_precondition(self, ba, alphabet):
        gammas = set(legal_continuations(ba, (), alphabet, 1))
        assert (ba.withdraw_no(1),) in gammas
        assert (ba.withdraw_ok(1),) not in gammas

    def test_generic_path_for_language_spec(self):
        spec = LanguageSpec("X", [[op("X", "a"), op("X", "b")]])
        alphabet = [o.invocation for o in spec.alphabet()]
        gammas = set(legal_continuations(spec, (), alphabet, 2))
        assert gammas == {(), (op("X", "a"),), (op("X", "a"), op("X", "b"))}


class TestLooksLike:
    def test_reflexive(self, ba, alphabet):
        alpha = (ba.deposit(1),)
        assert looks_like(ba, alpha, alpha, alphabet, 3)

    def test_equal_balance_sequences_look_alike(self, ba, alphabet):
        a = (ba.deposit(1), ba.deposit(1))
        b = (ba.deposit(2),)
        assert looks_like(ba, a, b, alphabet, 3)
        assert looks_like(ba, b, a, alphabet, 3)

    def test_different_balances_distinguishable(self, ba, alphabet):
        a = (ba.deposit(1),)
        b = (ba.deposit(2),)
        violation = find_looks_like_violation(ba, a, b, alphabet, 2)
        assert violation is not None
        # The witness is a genuine distinguisher.
        assert ba.is_legal(a + violation.future)
        assert not ba.is_legal(b + violation.future)

    def test_illegal_alpha_vacuous(self, ba, alphabet):
        alpha = (ba.withdraw_ok(1),)  # illegal from balance 0
        beta = (ba.deposit(1),)
        assert looks_like(ba, alpha, beta, alphabet, 3)

    def test_legal_alpha_illegal_beta_immediate_violation(self, ba, alphabet):
        alpha = (ba.deposit(1),)
        beta = (ba.withdraw_ok(1),)
        violation = find_looks_like_violation(ba, alpha, beta, alphabet, 3)
        assert violation is not None
        assert violation.future == ()

    def test_asymmetry_example(self):
        """looks-like is not symmetric: a dead-end state looks like a live one."""
        a, b, c = op("X", "a"), op("X", "b"), op("X", "c")
        # Language: a, b, bc — after a there is no future; after b there is c.
        spec = LanguageSpec("X", [[a], [b, c]])
        alphabet = [o.invocation for o in spec.alphabet()]
        assert looks_like(spec, (a,), (b,), alphabet, 3)
        assert not looks_like(spec, (b,), (a,), alphabet, 3)


class TestEquieffective:
    def test_commuted_deposits_equieffective(self, ba, alphabet):
        a = (ba.deposit(1), ba.deposit(2))
        b = (ba.deposit(2), ba.deposit(1))
        assert equieffective(ba, a, b, alphabet, 3)

    def test_deposit_withdraw_cancel(self, ba, alphabet):
        a = (ba.deposit(1), ba.withdraw_ok(1))
        assert equieffective(ba, a, (), alphabet, 3)

    def test_violation_is_directional_witness(self, ba, alphabet):
        a = (ba.deposit(1),)
        b = (ba.deposit(2),)
        violation = find_equieffective_violation(ba, a, b, alphabet, 2)
        assert violation is not None
        assert ba.is_legal(tuple(violation.alpha) + tuple(violation.future))
        assert not ba.is_legal(tuple(violation.beta) + tuple(violation.future))

    def test_balance_reads_do_not_disturb(self, ba, alphabet):
        a = (ba.deposit(2), ba.balance(2))
        b = (ba.deposit(2),)
        assert equieffective(ba, a, b, alphabet, 3)
