"""Unit tests for serial specifications (language and state-machine forms)."""

import pytest

from repro.core.automaton_spec import FunctionalSpec
from repro.core.events import inv, op
from repro.core.serial_spec import LanguageSpec, is_prefix_closed


def ab_language():
    """The language {ε, a, ab} on object X (a, b unary ok-operations)."""
    return LanguageSpec("X", [[op("X", "a"), op("X", "b")]])


class TestLanguageSpec:
    def test_prefixes_added(self):
        spec = ab_language()
        assert spec.is_legal(())
        assert spec.is_legal((op("X", "a"),))
        assert spec.is_legal((op("X", "a"), op("X", "b")))

    def test_non_member(self):
        spec = ab_language()
        assert not spec.is_legal((op("X", "b"),))
        assert not spec.is_legal((op("X", "a"), op("X", "a")))

    def test_language_property_is_prefix_closed(self):
        assert is_prefix_closed(ab_language().language)

    def test_responses(self):
        spec = ab_language()
        assert spec.responses((), inv("a")) == {"ok"}
        assert spec.responses((op("X", "a"),), inv("b")) == {"ok"}
        assert spec.responses((op("X", "a"),), inv("a")) == frozenset()

    def test_operations_relocated_to_spec_object(self):
        spec = LanguageSpec("X", [[op("Y", "a")]])
        assert spec.is_legal((op("X", "a"),))
        assert spec.is_legal((op("Y", "a"),))  # relocated on the way in

    def test_alphabet(self):
        assert ab_language().alphabet() == {op("X", "a"), op("X", "b")}

    def test_renamed(self):
        spec = ab_language().renamed("Z")
        assert spec.name == "Z"
        assert spec.is_legal((op("Z", "a"),))

    def test_extend_legal(self):
        spec = ab_language()
        assert spec.extend_legal((op("X", "a"),), op("X", "b"))
        assert not spec.extend_legal((op("X", "a"),), op("X", "a"))

    def test_operation_builder(self):
        assert ab_language().operation(inv("a"), "ok") == op("X", "a")

    def test_check_object_names(self):
        spec = ab_language()
        spec.check_object_names((op("X", "a"),))
        with pytest.raises(ValueError):
            spec.check_object_names((op("Y", "a"),))


def toggle_transitions(state, invocation):
    """A one-bit toggle machine: flip/ok and read/<bit>."""
    if invocation.name == "flip":
        yield "ok", not state
    elif invocation.name == "read":
        yield state, state


class TestFunctionalSpec:
    def test_initial_legality(self):
        spec = FunctionalSpec("T", transitions=toggle_transitions, initial=False)
        assert spec.is_legal(())

    def test_simulation(self):
        spec = FunctionalSpec("T", transitions=toggle_transitions, initial=False)
        seq = (
            op("T", "flip"),
            op("T", "read", response=True),
            op("T", "flip"),
            op("T", "read", response=False),
        )
        assert spec.is_legal(seq)

    def test_wrong_response_illegal(self):
        spec = FunctionalSpec("T", transitions=toggle_transitions, initial=False)
        assert not spec.is_legal((op("T", "read", response=True),))

    def test_responses_from_state(self):
        spec = FunctionalSpec("T", transitions=toggle_transitions, initial=False)
        assert spec.responses((), inv("read")) == {False}
        assert spec.responses((op("T", "flip"),), inv("read")) == {True}

    def test_states_after_illegal_is_empty(self):
        spec = FunctionalSpec("T", transitions=toggle_transitions, initial=False)
        assert spec.states_after((op("T", "read", response=True),)) == frozenset()

    def test_multiple_initial_states_union_semantics(self):
        spec = FunctionalSpec(
            "T", transitions=toggle_transitions, initials=(False, True)
        )
        # Either read result is legal from the nondeterministic start.
        assert spec.is_legal((op("T", "read", response=True),))
        assert spec.is_legal((op("T", "read", response=False),))
        # But a read pins the state afterward.
        assert not spec.is_legal(
            (op("T", "read", response=True), op("T", "read", response=False))
        )

    def test_no_initial_states_rejected(self):
        with pytest.raises(ValueError):
            FunctionalSpec("T", transitions=toggle_transitions, initials=())

    def test_renamed(self):
        spec = FunctionalSpec("T", transitions=toggle_transitions, initial=False)
        renamed = spec.renamed("U")
        assert renamed.name == "U"
        assert renamed.is_legal((op("U", "flip"),))

    def test_step_macro(self):
        spec = FunctionalSpec("T", transitions=toggle_transitions, initial=False)
        macro = spec.initial_macro_state()
        macro = spec.step_macro(macro, op("T", "flip"))
        assert macro == frozenset({True})

    def test_run_macro_dies_on_illegal(self):
        spec = FunctionalSpec("T", transitions=toggle_transitions, initial=False)
        macro = spec.run_macro(
            spec.initial_macro_state(),
            (op("T", "read", response=True), op("T", "flip")),
        )
        assert macro == frozenset()

    def test_enabled_operations(self):
        spec = FunctionalSpec("T", transitions=toggle_transitions, initial=False)
        ops = spec.enabled_operations(
            spec.initial_macro_state(), [inv("flip"), inv("read")]
        )
        assert ops == {op("T", "flip"), op("T", "read", response=False)}


class TestPrefixClosureHelper:
    def test_prefix_closed(self):
        assert is_prefix_closed({(), (op("X", "a"),)})

    def test_not_prefix_closed(self):
        assert not is_prefix_closed({(op("X", "a"), op("X", "b"))})
