"""Unit tests for histories: well-formedness, projections, derived relations."""

import pytest

from repro.core.events import abort, commit, inv, invoke, op, respond
from repro.core.history import (
    History,
    HistoryBuilder,
    IllFormedHistoryError,
    equivalent,
    serial_history,
    transaction_events,
)


def simple_history():
    """A deposits 5 and commits; B withdraws 3 (active)."""
    return History.of(
        invoke(inv("deposit", 5), "BA", "A"),
        respond("ok", "BA", "A"),
        commit("BA", "A"),
        invoke(inv("withdraw", 3), "BA", "B"),
        respond("ok", "BA", "B"),
    )


class TestWellFormedness:
    def test_empty_history_is_well_formed(self):
        assert len(History()) == 0

    def test_valid_sequence(self):
        simple_history()

    def test_response_without_invocation(self):
        with pytest.raises(IllFormedHistoryError):
            History.of(respond("ok", "BA", "A"))

    def test_double_invocation(self):
        with pytest.raises(IllFormedHistoryError):
            History.of(
                invoke(inv("a"), "X", "A"),
                invoke(inv("b"), "X", "A"),
            )

    def test_pending_invocation_at_other_object(self):
        with pytest.raises(IllFormedHistoryError):
            History.of(
                invoke(inv("a"), "X", "A"),
                respond("ok", "Y", "A"),
            )

    def test_commit_with_pending_invocation(self):
        with pytest.raises(IllFormedHistoryError):
            History.of(invoke(inv("a"), "X", "A"), commit("X", "A"))

    def test_invoke_after_commit(self):
        with pytest.raises(IllFormedHistoryError):
            History.of(commit("X", "A"), invoke(inv("a"), "X", "A"))

    def test_commit_then_abort_forbidden(self):
        with pytest.raises(IllFormedHistoryError):
            History.of(commit("X", "A"), abort("Y", "A"))

    def test_abort_then_commit_forbidden(self):
        with pytest.raises(IllFormedHistoryError):
            History.of(abort("X", "A"), commit("Y", "A"))

    def test_abort_with_pending_invocation_allowed(self):
        h = History.of(invoke(inv("a"), "X", "A"), abort("X", "A"))
        assert h.aborted() == {"A"}

    def test_commit_at_multiple_objects(self):
        h = History.of(commit("X", "A"), commit("Y", "A"))
        assert h.committed() == {"A"}

    def test_duplicate_commit_same_object(self):
        with pytest.raises(IllFormedHistoryError):
            History.of(commit("X", "A"), commit("X", "A"))

    def test_duplicate_abort_same_object(self):
        with pytest.raises(IllFormedHistoryError):
            History.of(abort("X", "A"), abort("X", "A"))

    def test_no_events_after_abort_except_abort(self):
        with pytest.raises(IllFormedHistoryError):
            History.of(abort("X", "A"), invoke(inv("a"), "Y", "A"))

    def test_interleaved_transactions_ok(self):
        History.of(
            invoke(inv("a"), "X", "A"),
            invoke(inv("b"), "X", "B"),
            respond("ok", "X", "B"),
            respond("ok", "X", "A"),
        )

    def test_validate_false_skips_checks(self):
        h = History([respond("ok", "BA", "A")], validate=False)
        assert len(h) == 1


class TestProjections:
    def test_project_object(self):
        h = History.of(
            invoke(inv("a"), "X", "A"),
            respond("ok", "X", "A"),
            invoke(inv("b"), "Y", "A"),
            respond("ok", "Y", "A"),
        )
        hx = h.project_objects("X")
        assert len(hx) == 2
        assert all(e.obj == "X" for e in hx)

    def test_project_transaction(self):
        h = simple_history()
        hb = h.project_transactions("B")
        assert len(hb) == 2
        assert all(e.txn == "B" for e in hb)

    def test_project_multiple(self):
        h = simple_history()
        assert len(h.project_transactions({"A", "B"})) == len(h)

    def test_projection_preserves_order(self):
        h = simple_history()
        ha = h.project_transactions("A")
        assert [type(e).__name__ for e in ha] == [
            "InvocationEvent",
            "ResponseEvent",
            "CommitEvent",
        ]


class TestTransactionStatus:
    def test_committed_aborted_active(self):
        h = History.of(
            commit("X", "A"),
            abort("X", "B"),
            invoke(inv("a"), "X", "C"),
        )
        assert h.committed() == {"A"}
        assert h.aborted() == {"B"}
        assert h.active() == {"C"}

    def test_is_active_for_unknown_transaction(self):
        assert simple_history().is_active("ZZZ")

    def test_pending_invocation(self):
        h = History.of(invoke(inv("a", 1), "X", "A"))
        assert h.pending_invocation("A").invocation == inv("a", 1)

    def test_pending_cleared_by_response(self):
        h = History.of(invoke(inv("a"), "X", "A"), respond("ok", "X", "A"))
        assert h.pending_invocation("A") is None


class TestOpseq:
    def test_opseq_pairs_invocations_with_responses(self):
        h = simple_history()
        ops = h.opseq()
        assert ops == (
            op("BA", "deposit", 5),
            op("BA", "withdraw", 3),
        )

    def test_opseq_ignores_pending(self):
        h = History.of(invoke(inv("a"), "X", "A"))
        assert h.opseq() == ()

    def test_opseq_order_is_response_order(self):
        h = History.of(
            invoke(inv("a"), "X", "A"),
            invoke(inv("b"), "X", "B"),
            respond("ok", "X", "B"),
            respond("ok", "X", "A"),
        )
        assert [o.name for o in h.opseq()] == ["b", "a"]

    def test_operations_of(self):
        h = simple_history()
        assert [o.name for o in h.operations_of("A")] == ["deposit"]


class TestDerived:
    def test_permanent_drops_uncommitted(self):
        h = simple_history()
        perm = h.permanent()
        assert perm.transactions() == {"A"}

    def test_failure_free(self):
        assert simple_history().failure_free()
        h = History.of(abort("X", "A"))
        assert not h.failure_free()

    def test_is_serial(self):
        assert simple_history().is_serial()

    def test_is_not_serial(self):
        h = History.of(
            invoke(inv("a"), "X", "A"),
            invoke(inv("b"), "X", "B"),
            respond("ok", "X", "B"),
            respond("ok", "X", "A"),
        )
        assert not h.is_serial()

    def test_precedes_captures_commit_before_response(self):
        h = simple_history()
        assert ("A", "B") in h.precedes()
        assert ("B", "A") not in h.precedes()

    def test_precedes_empty_for_concurrent(self):
        h = History.of(
            invoke(inv("a"), "X", "A"),
            respond("ok", "X", "A"),
            invoke(inv("b"), "X", "B"),
            respond("ok", "X", "B"),
            commit("X", "A"),
            commit("X", "B"),
        )
        assert h.precedes() == frozenset()

    def test_precedes_is_irreflexive(self):
        h = simple_history()
        assert all(a != b for a, b in h.precedes())

    def test_commit_order(self):
        h = History.of(commit("X", "B"), commit("X", "A"), commit("Y", "A"))
        assert h.commit_order() == ("B", "A")

    def test_append_returns_new_history(self):
        h = History()
        h2 = h.append(commit("X", "A"))
        assert len(h) == 0 and len(h2) == 1

    def test_concatenation_validates(self):
        h1 = History.of(commit("X", "A"))
        h2 = History.of(abort("Y", "A"))
        with pytest.raises(IllFormedHistoryError):
            h1 + h2

    def test_slicing_returns_history(self):
        h = simple_history()
        assert isinstance(h[:2], History)
        assert len(h[:2]) == 2


class TestEquivalenceAndSerial:
    def test_equivalent_reordering(self):
        h = History.of(
            invoke(inv("a"), "X", "A"),
            invoke(inv("b"), "X", "B"),
            respond("ok", "X", "A"),
            respond("ok", "X", "B"),
        )
        k = History.of(
            invoke(inv("b"), "X", "B"),
            respond("ok", "X", "B"),
            invoke(inv("a"), "X", "A"),
            respond("ok", "X", "A"),
        )
        assert equivalent(h, k)

    def test_not_equivalent_different_steps(self):
        h = History.of(invoke(inv("a"), "X", "A"), respond("ok", "X", "A"))
        k = History.of(invoke(inv("a"), "X", "A"), respond("no", "X", "A"))
        assert not equivalent(h, k)

    def test_serial_history_concatenates_projections(self):
        h = simple_history()
        s = serial_history(h, ["B", "A"])
        assert s.is_serial()
        assert [o.name for o in s.opseq()] == ["withdraw", "deposit"]

    def test_serial_history_is_equivalent(self):
        h = simple_history()
        assert equivalent(h, serial_history(h, ["A", "B"]))

    def test_serial_history_requires_cover(self):
        with pytest.raises(ValueError):
            serial_history(simple_history(), ["A"])

    def test_serial_history_ignores_extra_names(self):
        s = serial_history(simple_history(), ["Z", "A", "B"])
        assert s.transactions() == {"A", "B"}


class TestHistoryBuilder:
    def test_builder_matches_history_validation(self):
        b = HistoryBuilder()
        b.append(invoke(inv("a"), "X", "A"))
        b.append(respond("ok", "X", "A"))
        b.append(commit("X", "A"))
        assert b.snapshot() == History.of(
            invoke(inv("a"), "X", "A"),
            respond("ok", "X", "A"),
            commit("X", "A"),
        )

    def test_builder_rejects_ill_formed(self):
        b = HistoryBuilder()
        with pytest.raises(IllFormedHistoryError):
            b.append(respond("ok", "X", "A"))
        assert len(b) == 0

    def test_builder_rejection_preserves_state(self):
        b = HistoryBuilder()
        b.append(invoke(inv("a"), "X", "A"))
        with pytest.raises(IllFormedHistoryError):
            b.append(invoke(inv("b"), "X", "A"))
        b.append(respond("ok", "X", "A"))  # original pending still there

    def test_can_append(self):
        b = HistoryBuilder()
        assert b.can_append(invoke(inv("a"), "X", "A"))
        assert not b.can_append(respond("ok", "X", "A"))
        assert len(b) == 0

    def test_builder_is_active(self):
        b = HistoryBuilder()
        assert b.is_active("A")
        b.append(commit("X", "A"))
        assert not b.is_active("A")

    def test_builder_pending(self):
        b = HistoryBuilder()
        b.append(invoke(inv("a", 1), "X", "A"))
        assert b.pending_invocation("A").invocation == inv("a", 1)


class TestTransactionEvents:
    def test_serial_block_with_commit(self):
        events = transaction_events(
            "A", "BA", [op("BA", "deposit", 5)], do_commit=True
        )
        h = History(events)
        assert h.committed() == {"A"}
        assert h.opseq() == (op("BA", "deposit", 5),)

    def test_serial_block_without_commit(self):
        events = transaction_events("A", "BA", [op("BA", "deposit", 5)], do_commit=False)
        assert History(events).committed() == frozenset()
