"""Unit tests for the event and operation vocabulary."""

import pytest

from repro.core.events import (
    AbortEvent,
    CommitEvent,
    Invocation,
    InvocationEvent,
    Operation,
    ResponseEvent,
    abort,
    commit,
    inv,
    invoke,
    op,
    respond,
)


class TestInvocation:
    def test_inv_builder(self):
        invocation = inv("withdraw", 3)
        assert invocation.name == "withdraw"
        assert invocation.args == (3,)

    def test_no_args(self):
        assert inv("balance").args == ()

    def test_equality_and_hash(self):
        assert inv("deposit", 5) == inv("deposit", 5)
        assert hash(inv("deposit", 5)) == hash(inv("deposit", 5))
        assert inv("deposit", 5) != inv("deposit", 6)
        assert inv("deposit", 5) != inv("withdraw", 5)

    def test_str_with_args(self):
        assert str(inv("deposit", 5)) == "deposit(5)"

    def test_str_without_args(self):
        assert str(inv("balance")) == "balance"

    def test_list_args_frozen_to_tuple(self):
        invocation = Invocation("putmany", ([1, 2],))
        assert invocation.args == ((1, 2),)
        hash(invocation)

    def test_dict_args_frozen(self):
        invocation = Invocation("config", ({"a": 1},))
        hash(invocation)

    def test_set_args_frozen(self):
        invocation = Invocation("batch", ({1, 2},))
        assert invocation.args == (frozenset({1, 2}),)

    def test_unhashable_exotic_raises(self):
        class Weird:
            __hash__ = None

        with pytest.raises(TypeError):
            Invocation("bad", (Weird(),))


class TestOperation:
    def test_builder(self):
        o = op("BA", "withdraw", 3, response="no")
        assert o.obj == "BA"
        assert o.name == "withdraw"
        assert o.args == (3,)
        assert o.response == "no"

    def test_default_response(self):
        assert op("BA", "deposit", 5).response == "ok"

    def test_str_matches_paper_notation(self):
        assert str(op("X", "insert", 3)) == "X:[insert(3),ok]"

    def test_object_name_is_significant(self):
        assert op("X", "insert", 3) != op("Y", "insert", 3)

    def test_at_relocates(self):
        assert op("X", "insert", 3).at("Y") == op("Y", "insert", 3)

    def test_at_preserves_response(self):
        assert op("X", "w", 1, response="no").at("Y").response == "no"

    def test_hashable(self):
        assert len({op("X", "a"), op("X", "a"), op("X", "b")}) == 2

    def test_ordering_defined(self):
        ops = sorted([op("X", "b"), op("X", "a")])
        assert ops[0].name == "a"


class TestEvents:
    def test_invocation_event(self):
        e = invoke(inv("deposit", 5), "BA", "A")
        assert e.is_invocation and not e.is_response
        assert e.obj == "BA" and e.txn == "A"
        assert e.invocation == inv("deposit", 5)

    def test_invocation_event_requires_invocation(self):
        with pytest.raises(ValueError):
            InvocationEvent(obj="BA", txn="A")

    def test_response_event(self):
        e = respond("ok", "BA", "A")
        assert e.is_response
        assert e.response == "ok"

    def test_commit_event(self):
        e = commit("BA", "A")
        assert e.is_commit and not e.is_abort

    def test_abort_event(self):
        e = abort("BA", "A")
        assert e.is_abort and not e.is_commit

    def test_involves(self):
        e = commit("BA", "A")
        assert e.involves(obj="BA")
        assert e.involves(txn="A")
        assert e.involves(obj="BA", txn="A")
        assert not e.involves(obj="X")
        assert not e.involves(txn="B")

    def test_str_forms(self):
        assert str(invoke(inv("deposit", 5), "BA", "A")) == "<deposit(5), BA, A>"
        assert str(respond("ok", "BA", "A")) == "<ok, BA, A>"
        assert str(commit("BA", "A")) == "<commit, BA, A>"
        assert str(abort("BA", "A")) == "<abort, BA, A>"

    def test_events_hashable_and_comparable(self):
        assert commit("BA", "A") == commit("BA", "A")
        assert commit("BA", "A") != abort("BA", "A")
        assert len({commit("BA", "A"), commit("BA", "A")}) == 1
