"""Unit tests for JSON serialization of events and histories."""

import json

import pytest

from repro.core import serde
from repro.core.events import abort, commit, inv, invoke, op, respond
from repro.core.history import History
from repro.experiments.examples import section_3_3_history


class TestValueCodec:
    @pytest.mark.parametrize(
        "value", [None, True, False, 0, -3, 2.5, "ok", (1, 2), ((1,), "a")]
    )
    def test_round_trip(self, value):
        assert serde.decode_value(serde.encode_value(value)) == value

    def test_frozenset(self):
        value = frozenset({1, 2})
        assert serde.decode_value(serde.encode_value(value)) == value

    def test_lists_become_tuples(self):
        assert serde.decode_value([1, 2]) == (1, 2)

    def test_unserializable_rejected(self):
        with pytest.raises(serde.SerdeError):
            serde.encode_value(object())

    def test_unknown_object_rejected(self):
        with pytest.raises(serde.SerdeError):
            serde.decode_value({"weird": 1})


class TestEventCodec:
    @pytest.mark.parametrize(
        "event",
        [
            invoke(inv("deposit", 5), "BA", "A"),
            respond("ok", "BA", "A"),
            respond(7, "BA", "A"),
            commit("BA", "A"),
            abort("X", "B"),
        ],
    )
    def test_round_trip(self, event):
        assert serde.decode_event(serde.encode_event(event)) == event

    def test_missing_kind(self):
        with pytest.raises(serde.SerdeError):
            serde.decode_event({"obj": "X", "txn": "A"})

    def test_unknown_kind(self):
        with pytest.raises(serde.SerdeError):
            serde.decode_event({"kind": "zap", "obj": "X", "txn": "A"})

    def test_response_requires_payload(self):
        with pytest.raises(serde.SerdeError):
            serde.decode_event({"kind": "respond", "obj": "X", "txn": "A"})


class TestOperationCodec:
    def test_round_trip(self):
        operation = op("BA", "withdraw", 3, response="no")
        assert serde.decode_operation(serde.encode_operation(operation)) == operation

    def test_missing_fields(self):
        with pytest.raises(serde.SerdeError):
            serde.decode_operation({"name": "a", "args": []})


class TestHistoryCodec:
    def test_round_trip(self):
        h = section_3_3_history()
        assert serde.loads(serde.dumps(h)) == h

    def test_file_round_trip(self, tmp_path):
        h = section_3_3_history()
        path = str(tmp_path / "history.json")
        serde.dump(h, path)
        assert serde.load(path) == h

    def test_validation_on_load(self):
        text = json.dumps(
            {"events": [{"kind": "respond", "obj": "X", "txn": "A", "response": 1}]}
        )
        from repro.core.history import IllFormedHistoryError

        with pytest.raises(IllFormedHistoryError):
            serde.loads(text)

    def test_validation_can_be_skipped(self):
        text = json.dumps(
            {"events": [{"kind": "respond", "obj": "X", "txn": "A", "response": 1}]}
        )
        h = serde.loads(text, validate=False)
        assert len(h) == 1

    def test_invalid_json(self):
        with pytest.raises(serde.SerdeError):
            serde.loads("{nope")

    def test_missing_events_key(self):
        with pytest.raises(serde.SerdeError):
            serde.loads("{}")

    def test_empty_history(self):
        assert serde.loads(serde.dumps(History())) == History()

    def test_opseq_preserved(self):
        h = section_3_3_history()
        assert serde.loads(serde.dumps(h)).opseq() == h.opseq()
