"""Unit tests for forward and right-backward commutativity (Sections 6.2–6.3).

These exercise the *generic* (explicit-context) checkers in
``repro.core.commutativity``; the macro-state engine has its own suite
under tests/analysis.
"""

import pytest

from repro.adts import BankAccount
from repro.analysis.alphabet import reachable_macro_contexts
from repro.core.commutativity import (
    as_opseq,
    commute_forward,
    find_backward_violation,
    find_forward_violation,
    right_commutes_backward,
)
from repro.core.events import op


@pytest.fixture
def ba():
    return BankAccount(domain=(1, 2))


@pytest.fixture
def alphabet(ba):
    return ba.invocation_alphabet()


@pytest.fixture
def contexts(ba, alphabet):
    return [
        mc.context
        for mc in reachable_macro_contexts(ba, alphabet, max_depth=3)
    ]


DEPTH = 3


class TestAsOpseq:
    def test_single_operation(self):
        o = op("X", "a")
        assert as_opseq(o) == (o,)

    def test_sequence_passthrough(self):
        seq = (op("X", "a"), op("X", "b"))
        assert as_opseq(seq) == seq

    def test_list_normalized(self):
        assert as_opseq([op("X", "a")]) == (op("X", "a"),)


class TestForwardCommutativityBA:
    """Ground-truth checks against the paper's Figure 6-1 derivations."""

    def test_deposits_commute(self, ba, alphabet, contexts):
        assert commute_forward(
            ba, ba.deposit(1), ba.deposit(2), contexts, alphabet, DEPTH
        )

    def test_successful_withdrawals_conflict(self, ba, alphabet, contexts):
        violation = find_forward_violation(
            ba, ba.withdraw_ok(1), ba.withdraw_ok(2), contexts, alphabet, DEPTH
        )
        assert violation is not None
        assert violation.kind == "illegal"
        # Verify the witness: both enabled after the context, not in sequence.
        ctx = violation.context
        assert ba.is_legal(ctx + (ba.withdraw_ok(1),))
        assert ba.is_legal(ctx + (ba.withdraw_ok(2),))
        assert not ba.is_legal(ctx + (ba.withdraw_ok(1), ba.withdraw_ok(2)))

    def test_deposit_vs_failed_withdrawal_conflict(self, ba, alphabet, contexts):
        assert not commute_forward(
            ba, ba.deposit(2), ba.withdraw_no(1), contexts, alphabet, DEPTH
        )

    def test_deposit_vs_balance_conflict(self, ba, alphabet, contexts):
        violation = find_forward_violation(
            ba, ba.deposit(1), ba.balance(0), contexts, alphabet, DEPTH
        )
        assert violation is not None

    def test_ok_and_no_withdrawals_commute(self, ba, alphabet, contexts):
        assert commute_forward(
            ba, ba.withdraw_ok(1), ba.withdraw_no(2), contexts, alphabet, DEPTH
        )

    def test_failed_withdrawals_commute(self, ba, alphabet, contexts):
        assert commute_forward(
            ba, ba.withdraw_no(1), ba.withdraw_no(2), contexts, alphabet, DEPTH
        )

    def test_balances_commute(self, ba, alphabet, contexts):
        assert commute_forward(
            ba, ba.balance(0), ba.balance(0), contexts, alphabet, DEPTH
        )

    def test_symmetry_on_witness_pairs(self, ba, alphabet, contexts):
        """FC is symmetric (Lemma 8): verdicts agree in both argument orders."""
        pairs = [
            (ba.deposit(1), ba.withdraw_no(1)),
            (ba.withdraw_ok(1), ba.withdraw_ok(1)),
            (ba.deposit(1), ba.deposit(2)),
            (ba.withdraw_ok(2), ba.balance(2)),
        ]
        for beta, gamma in pairs:
            forward = commute_forward(ba, beta, gamma, contexts, alphabet, DEPTH)
            backward = commute_forward(ba, gamma, beta, contexts, alphabet, DEPTH)
            assert forward == backward


class TestBackwardCommutativityBA:
    """Ground-truth checks against the paper's Figure 6-2 derivations."""

    def test_successful_withdrawals_commute_backward(self, ba, alphabet, contexts):
        assert right_commutes_backward(
            ba, ba.withdraw_ok(1), ba.withdraw_ok(2), contexts, alphabet, DEPTH
        )

    def test_withdraw_ok_not_backward_through_deposit(self, ba, alphabet, contexts):
        """The paper's Section 6.3 worked example."""
        violation = find_backward_violation(
            ba, ba.withdraw_ok(2), ba.deposit(1), contexts, alphabet, DEPTH
        )
        assert violation is not None
        # Verify: context + deposit + withdraw legal, swapped + future illegal.
        ctx = violation.context
        assert ba.is_legal(ctx + (ba.deposit(1), ba.withdraw_ok(2)))
        assert not ba.is_legal(
            ctx + (ba.withdraw_ok(2), ba.deposit(1)) + violation.future
        )

    def test_deposit_backward_through_withdraw_ok(self, ba, alphabet, contexts):
        """...but the mirrored direction commutes (asymmetry)."""
        assert right_commutes_backward(
            ba, ba.deposit(1), ba.withdraw_ok(2), contexts, alphabet, DEPTH
        )

    def test_failed_withdrawal_not_backward_through_ok(self, ba, alphabet, contexts):
        assert not right_commutes_backward(
            ba, ba.withdraw_no(2), ba.withdraw_ok(1), contexts, alphabet, DEPTH
        )

    def test_ok_backward_through_failed(self, ba, alphabet, contexts):
        assert right_commutes_backward(
            ba, ba.withdraw_ok(1), ba.withdraw_no(2), contexts, alphabet, DEPTH
        )

    def test_balance_not_backward_through_deposit(self, ba, alphabet, contexts):
        assert not right_commutes_backward(
            ba, ba.balance(1), ba.deposit(1), contexts, alphabet, DEPTH
        )

    def test_balance_backward_through_failed_withdrawal(self, ba, alphabet, contexts):
        assert right_commutes_backward(
            ba, ba.balance(0), ba.withdraw_no(1), contexts, alphabet, DEPTH
        )

    def test_deposit_not_backward_through_balance(self, ba, alphabet, contexts):
        assert not right_commutes_backward(
            ba, ba.deposit(1), ba.balance(0), contexts, alphabet, DEPTH
        )

    def test_violation_future_is_meaningful(self, ba, alphabet, contexts):
        violation = find_backward_violation(
            ba, ba.withdraw_no(2), ba.withdraw_ok(1), contexts, alphabet, DEPTH
        )
        assert violation is not None
        ctx = tuple(violation.context)
        gb = ctx + (ba.withdraw_ok(1), ba.withdraw_no(2))
        bg = ctx + (ba.withdraw_no(2), ba.withdraw_ok(1))
        assert ba.is_legal(gb + violation.future)
        assert not ba.is_legal(bg + violation.future)


class TestSequencesNotJustOperations:
    def test_sequences_commute_forward(self, ba, alphabet, contexts):
        """The definitions act on sequences: a deposit+withdraw pair is a no-op."""
        noop = (ba.deposit(1), ba.withdraw_ok(1))
        assert commute_forward(ba, noop, ba.balance(0), contexts, alphabet, DEPTH)

    def test_sequence_vs_operation_conflict(self, ba, alphabet, contexts):
        two_deps = (ba.deposit(1), ba.deposit(1))
        assert not commute_forward(
            ba, two_deps, ba.balance(0), contexts, alphabet, DEPTH
        )

    def test_empty_sequence_commutes_with_everything(self, ba, alphabet, contexts):
        assert commute_forward(ba, (), ba.deposit(1), contexts, alphabet, DEPTH)
        assert right_commutes_backward(
            ba, (), ba.deposit(1), contexts, alphabet, DEPTH
        )
        assert right_commutes_backward(
            ba, ba.deposit(1), (), contexts, alphabet, DEPTH
        )

    def test_violation_str_renders(self, ba, alphabet, contexts):
        violation = find_forward_violation(
            ba, ba.withdraw_ok(1), ba.withdraw_ok(2), contexts, alphabet, DEPTH
        )
        assert "FC violation" in str(violation)
        violation2 = find_backward_violation(
            ba, ba.withdraw_no(2), ba.withdraw_ok(1), contexts, alphabet, DEPTH
        )
        assert "RBC violation" in str(violation2)
