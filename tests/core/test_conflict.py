"""Unit tests for conflict relations and their combinators."""

import pytest

from repro.adts import BankAccount
from repro.core.conflict import (
    ClassifierConflict,
    EmptyConflict,
    PairSetConflict,
    PredicateConflict,
    SymmetricClosure,
    TotalConflict,
    UnionConflict,
    WithoutPairs,
    incomparable,
    relation_difference,
)
from repro.core.events import op

A = op("X", "a")
B = op("X", "b")
C = op("X", "c")
ALPHABET = (A, B, C)


class TestBasicRelations:
    def test_empty(self):
        assert not EmptyConflict().conflicts(A, B)
        assert EmptyConflict().pairs(ALPHABET) == frozenset()

    def test_total(self):
        assert TotalConflict().conflicts(A, A)
        assert len(TotalConflict().pairs(ALPHABET)) == 9

    def test_predicate(self):
        rel = PredicateConflict(lambda new, old: new.name == "a")
        assert rel.conflicts(A, B)
        assert not rel.conflicts(B, A)

    def test_callable_protocol(self):
        rel = TotalConflict()
        assert rel(A, B)


class TestPairSetConflict:
    def test_known_pairs(self):
        rel = PairSetConflict([(A, B)], alphabet=ALPHABET)
        assert rel.conflicts(A, B)
        assert not rel.conflicts(B, A)

    def test_strict_fallback_for_unknown(self):
        rel = PairSetConflict([(A, B)], alphabet=(A, B))
        unknown = op("X", "zzz")
        assert rel.conflicts(unknown, A)

    def test_lenient_fallback(self):
        rel = PairSetConflict([(A, B)], alphabet=(A, B), strict=False)
        unknown = op("X", "zzz")
        assert not rel.conflicts(unknown, A)

    def test_explicit_pairs(self):
        rel = PairSetConflict([(A, B)])
        assert rel.explicit_pairs == {(A, B)}


class TestClassifierConflict:
    def classify(self, operation):
        return operation.name

    def test_matrix(self):
        rel = ClassifierConflict(self.classify, [("a", "b")])
        assert rel.conflicts(A, B)
        assert not rel.conflicts(B, A)
        assert not rel.conflicts(A, C)

    def test_refinement(self):
        rel = ClassifierConflict(
            self.classify,
            [("a", "a")],
            refine=lambda new, old: new.args == old.args,
        )
        assert rel.conflicts(op("X", "a", 1), op("X", "a", 1))
        assert not rel.conflicts(op("X", "a", 1), op("X", "a", 2))

    def test_classify_accessor(self):
        rel = ClassifierConflict(self.classify, [("a", "b")])
        assert rel.classify(A) == "a"
        assert rel.matrix == {("a", "b")}


class TestCombinators:
    def test_union(self):
        rel = UnionConflict(
            PairSetConflict([(A, B)], alphabet=ALPHABET, strict=False),
            PairSetConflict([(B, C)], alphabet=ALPHABET, strict=False),
        )
        assert rel.conflicts(A, B)
        assert rel.conflicts(B, C)
        assert not rel.conflicts(C, A)

    def test_or_operator(self):
        rel = PairSetConflict([(A, B)], alphabet=ALPHABET, strict=False) | PairSetConflict(
            [(B, C)], alphabet=ALPHABET, strict=False
        )
        assert rel.conflicts(A, B) and rel.conflicts(B, C)

    def test_symmetric_closure(self):
        rel = SymmetricClosure(PairSetConflict([(A, B)], alphabet=ALPHABET, strict=False))
        assert rel.conflicts(A, B)
        assert rel.conflicts(B, A)
        assert rel.is_symmetric(ALPHABET)

    def test_without_pairs(self):
        rel = WithoutPairs(TotalConflict(), [(A, B)])
        assert not rel.conflicts(A, B)
        assert rel.conflicts(B, A)


class TestComparisons:
    def test_contains(self):
        big = TotalConflict()
        small = PairSetConflict([(A, B)], alphabet=ALPHABET, strict=False)
        assert big.contains(small, ALPHABET)
        assert not small.contains(big, ALPHABET)

    def test_relation_difference(self):
        a = PairSetConflict([(A, B), (B, C)], alphabet=ALPHABET, strict=False)
        b = PairSetConflict([(A, B)], alphabet=ALPHABET, strict=False)
        assert relation_difference(a, b, ALPHABET) == {(B, C)}
        assert relation_difference(b, a, ALPHABET) == frozenset()

    def test_incomparable(self):
        a = PairSetConflict([(A, B)], alphabet=ALPHABET, strict=False)
        b = PairSetConflict([(B, C)], alphabet=ALPHABET, strict=False)
        assert incomparable(a, b, ALPHABET)
        assert not incomparable(a, a, ALPHABET)

    def test_is_symmetric_detects_asymmetry(self):
        rel = PairSetConflict([(A, B)], alphabet=ALPHABET, strict=False)
        assert not rel.is_symmetric(ALPHABET)


class TestBankAccountRelations:
    """The paper's incomparability claim, at the relation level."""

    def test_nfc_symmetric_nrbc_not(self):
        ba = BankAccount(domain=(1, 2))
        alphabet = ba.ground_alphabet()
        assert ba.nfc_conflict().is_symmetric(alphabet)
        assert not ba.nrbc_conflict().is_symmetric(alphabet)

    def test_nfc_nrbc_incomparable(self):
        ba = BankAccount(domain=(1, 2))
        alphabet = ba.ground_alphabet()
        assert incomparable(ba.nfc_conflict(), ba.nrbc_conflict(), alphabet)

    def test_witness_pairs(self):
        ba = BankAccount(domain=(1, 2))
        nfc = ba.nfc_conflict()
        nrbc = ba.nrbc_conflict()
        w1, w2 = ba.withdraw_ok(1), ba.withdraw_ok(2)
        assert nfc.conflicts(w1, w2) and not nrbc.conflicts(w1, w2)
        wno, wok = ba.withdraw_no(2), ba.withdraw_ok(1)
        assert nrbc.conflicts(wno, wok) and not nfc.conflicts(wno, wok)

    def test_symmetric_closure_strictly_larger(self):
        ba = BankAccount(domain=(1, 2))
        alphabet = ba.ground_alphabet()
        nrbc = ba.nrbc_conflict()
        sym = SymmetricClosure(nrbc)
        assert sym.contains(nrbc, alphabet)
        assert relation_difference(sym, nrbc, alphabet)
