"""Regression: the checker's batch pairwise passes are verdict-identical.

``ObjectAutomaton.accepts`` / ``explain_rejection`` accept a ``pairwise``
mode that precomputes the conflict relation over the history's ground
alphabet (scalar bitmask scan or numpy gather).  Every mode must return
*byte-identical* results to the default path — same booleans, same
rejection strings, holder attribution included — on:

* the paper's worked examples (Sections 3.3, 3.4 and 5) under both
  views and both relations;
* abort-heavy torture histories sampled from the automaton's language;
* perturbed torture histories (adjacent events swapped) that the
  automaton rejects;
* ill-formed input (a response with no pending invocation), where the
  alphabet precomputation itself cannot run and must fall back.
"""

import random

import pytest

from repro.adts import BankAccount
from repro.analysis.compile_tables import have_numpy
from repro.core import DU, UIP, ObjectAutomaton
from repro.core.events import inv, respond
from repro.core.history import History
from repro.core.object_automaton import TransactionProgram, generate_trace
from repro.experiments.examples import (
    section_3_3_history,
    section_3_4_perturbed_history,
    section_5_history,
)

VIEWS = (("UIP", UIP), ("DU", DU))
RELATIONS = ("nfc_conflict", "nrbc_conflict")
MODES = ("auto", "scalar", "vectorized")


def modes():
    return [m for m in MODES if m != "vectorized" or have_numpy()]


def worked_histories():
    return [
        ("3.3", section_3_3_history()),
        ("3.4", section_3_4_perturbed_history()),
        ("5", section_5_history()),
    ]


def torture_histories():
    spec = BankAccount("BA")
    conflict = spec.nfc_conflict()
    programs = [
        TransactionProgram(
            "T%d" % i,
            tuple(
                inv("deposit", 1 + (i + j) % 3)
                if (i + j) % 2
                else inv("withdraw", 1 + j % 3)
                for j in range(5)
            ),
        )
        for i in range(4)
    ]
    out = []
    for seed in range(6):
        trace = generate_trace(
            spec,
            UIP,
            conflict,
            programs,
            random.Random(seed),
            abort_probability=0.35,
        )
        out.append(("seed%d" % seed, trace))
        # a perturbed sibling: swap the middle pair of events, which
        # typically breaks a precondition and must be rejected the same
        # way on every pairwise mode
        events = list(trace)
        if len(events) >= 4:
            mid = len(events) // 2
            events[mid - 1], events[mid] = events[mid], events[mid - 1]
            out.append(
                ("seed%d-perturbed" % seed, History(events, validate=False))
            )
    return out


@pytest.mark.parametrize("view_name,view", VIEWS, ids=[n for n, _ in VIEWS])
@pytest.mark.parametrize("relation", RELATIONS)
def test_worked_examples_verdicts_byte_identical(view_name, view, relation):
    spec = BankAccount("BA")
    conflict = getattr(spec, relation)()
    for label, history in worked_histories():
        baseline = ObjectAutomaton.explain_rejection(spec, view, conflict, history)
        for mode in modes():
            got = ObjectAutomaton.explain_rejection(
                spec, view, conflict, history, pairwise=mode
            )
            assert got == baseline, (label, mode)
            assert ObjectAutomaton.accepts(
                spec, view, conflict, history, pairwise=mode
            ) == (baseline is None)


@pytest.mark.parametrize("view_name,view", VIEWS, ids=[n for n, _ in VIEWS])
def test_torture_histories_verdicts_byte_identical(view_name, view):
    spec = BankAccount("BA")
    verdicts = []
    for relation in RELATIONS:
        conflict = getattr(spec, relation)()
        for label, history in torture_histories():
            baseline = ObjectAutomaton.explain_rejection(
                spec, view, conflict, history
            )
            verdicts.append(baseline)
            for mode in modes():
                got = ObjectAutomaton.explain_rejection(
                    spec, view, conflict, history, pairwise=mode
                )
                assert got == baseline, (relation, label, mode)
    # the sample covers both outcomes, so the byte-identity is not vacuous
    assert any(v is None for v in verdicts)
    assert any(v is not None for v in verdicts)


def test_ill_formed_history_identical_across_modes():
    """A response with no pending invocation defeats alphabet enumeration."""
    spec = BankAccount("BA")
    conflict = spec.nrbc_conflict()
    bad = History([respond("ok", "BA", "T1")], validate=False)
    baseline = ObjectAutomaton.explain_rejection(spec, UIP, conflict, bad)
    assert baseline is not None
    for mode in modes():
        assert (
            ObjectAutomaton.explain_rejection(
                spec, UIP, conflict, bad, pairwise=mode
            )
            == baseline
        )


def test_pairwise_mode_validated():
    spec = BankAccount("BA")
    with pytest.raises(ValueError):
        ObjectAutomaton.explain_rejection(
            spec, UIP, spec.nrbc_conflict(), section_3_3_history(), pairwise="bogus"
        )
