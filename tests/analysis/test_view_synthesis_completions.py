"""Focused tests on the view synthesizer's probe completions.

The probe family includes abort completions: allowing (P, Q) and then
aborting Q's transaction exercises the *undo* interaction, which under
update-in-place is where (withdraw/OK, deposit) bites — the withdrawal
observed the deposit that later vanished.
"""

import pytest

from repro.adts import BankAccount
from repro.analysis.alphabet import reachable_macro_contexts, reachable_operations
from repro.analysis.view_synthesis import ViewSynthesizer
from repro.core.atomicity import is_dynamic_atomic
from repro.core.views import DU, UIP


@pytest.fixture(scope="module")
def setup():
    ba = BankAccount(domain=(1,))
    invocations = ba.invocation_alphabet()
    contexts = reachable_macro_contexts(ba, invocations, max_depth=3)
    return ba, invocations, contexts


class TestAbortCompletions:
    def test_withdraw_after_deposit_abort_witness(self, setup):
        """UIP: C's withdraw/OK leaned on B's active deposit; B aborts."""
        ba, invocations, contexts = setup
        syn = ViewSynthesizer(ba, UIP, invocations, contexts, rho_depth=2)
        witness = syn.probe_pair(ba.withdraw_ok(1), ba.deposit(1))
        assert witness is not None
        # The evidence history must itself fail dynamic atomicity.
        assert not is_dynamic_atomic(witness.history, ba)

    def test_du_immune_to_abort_probe_for_that_pair(self, setup):
        """DU: C never saw B's deposit, so B's abort is harmless —
        (withdraw/OK, deposit) is not required for deferred update."""
        ba, invocations, contexts = setup
        syn = ViewSynthesizer(ba, DU, invocations, contexts, rho_depth=2)
        assert syn.probe_pair(ba.withdraw_ok(1), ba.deposit(1)) is None


class TestEvidenceQuality:
    def test_every_du_witness_history_is_automaton_trace(self, setup):
        """Witness histories are genuine automaton schedules: they are
        produced by stepping the automaton, so re-checking acceptance
        under a conflict relation missing the pair must succeed."""
        from repro.core.conflict import WithoutPairs, TotalConflict
        from repro.core.object_automaton import ObjectAutomaton

        ba, invocations, contexts = setup
        alphabet = reachable_operations(ba, invocations, max_depth=3)
        syn = ViewSynthesizer(ba, DU, invocations, contexts, rho_depth=1)
        required = syn.required_pairs(alphabet)
        assert required
        for pair, evidence in list(required.items())[:5]:
            weakened = WithoutPairs(TotalConflict(), [pair])
            # The witness never runs two probing operations concurrently
            # beyond the (P, Q) pair, so the maximally strict relation
            # minus that pair must accept it.
            reason = ObjectAutomaton.explain_rejection(
                ba, DU, weakened, evidence.history
            )
            assert reason is None, (str(pair), reason)

    def test_str_of_evidence(self, setup):
        # Under UIP the balance read *sees* the active deposit, so the
        # feasible probing pair is balance(1) against deposit(1).
        ba, invocations, contexts = setup
        syn = ViewSynthesizer(ba, UIP, invocations, contexts, rho_depth=1)
        witness = syn.probe_pair(ba.balance(1), ba.deposit(1))
        assert witness is not None
        assert "required" in str(witness)
