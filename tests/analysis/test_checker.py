"""Unit tests for the macro-state commutativity engine."""

import pytest

from repro.adts import BankAccount, SemiQueue
from repro.analysis.checker import CommutativityChecker
from repro.core.conflict import incomparable


@pytest.fixture(scope="module")
def ba():
    return BankAccount(domain=(1, 2))


@pytest.fixture(scope="module")
def checker(ba):
    return CommutativityChecker(
        ba, ba.invocation_alphabet(), context_depth=4, future_depth=4
    )


class TestPairwise:
    def test_fc_violation_witness_is_valid(self, ba, checker):
        violation = checker.fc_violation(ba.withdraw_ok(1), ba.withdraw_ok(2))
        assert violation is not None
        ctx = violation.context
        assert ba.is_legal(ctx + (ba.withdraw_ok(1),))
        assert ba.is_legal(ctx + (ba.withdraw_ok(2),))

    def test_fc_illegal_concatenation_witness(self, ba, checker):
        # deposit(1)·balance(0) is itself illegal: the "illegal" kind.
        violation = checker.fc_violation(ba.deposit(1), ba.balance(0))
        assert violation is not None
        assert violation.kind == "illegal"

    def test_fc_distinguishable_witness(self):
        # Register writes: both orders legal but final values differ —
        # the "distinguishable" kind with a concrete future.
        from repro.adts import Register

        reg = Register(domain=("u", "v"), initial="u")
        checker = CommutativityChecker(
            reg, reg.invocation_alphabet(), context_depth=3, future_depth=3
        )
        violation = checker.fc_violation(reg.write("u"), reg.write("v"))
        assert violation is not None
        assert violation.kind == "distinguishable"
        ll = violation.looks_like_violation
        assert reg.is_legal(tuple(ll.alpha) + tuple(ll.future))
        assert not reg.is_legal(tuple(ll.beta) + tuple(ll.future))

    def test_rbc_violation_witness_is_valid(self, ba, checker):
        violation = checker.rbc_violation(ba.withdraw_ok(2), ba.deposit(1))
        assert violation is not None
        ctx = tuple(violation.context)
        gb = ctx + (ba.deposit(1), ba.withdraw_ok(2))
        bg = ctx + (ba.withdraw_ok(2), ba.deposit(1))
        assert ba.is_legal(gb + violation.future)
        assert not ba.is_legal(bg + violation.future)

    def test_commute_predicates(self, ba, checker):
        assert checker.commute_forward(ba.deposit(1), ba.deposit(2))
        assert checker.right_commutes_backward(ba.withdraw_ok(1), ba.withdraw_ok(2))

    def test_fc_symmetric_verdicts(self, ba, checker):
        pairs = [
            (ba.deposit(1), ba.withdraw_no(2)),
            (ba.withdraw_ok(1), ba.balance(0)),
            (ba.deposit(1), ba.deposit(2)),
        ]
        for a, b in pairs:
            assert checker.commute_forward(a, b) == checker.commute_forward(b, a)

    def test_cache_stability(self, ba, checker):
        v1 = checker.fc_violation(ba.withdraw_ok(1), ba.withdraw_ok(2))
        v2 = checker.fc_violation(ba.withdraw_ok(1), ba.withdraw_ok(2))
        assert v1 is v2


class TestRelations:
    def test_nfc_pairs_symmetric(self, ba, checker):
        alphabet = ba.ground_alphabet()
        pairs = checker.nfc_pairs(alphabet)
        assert all((b, a) in pairs for (a, b) in pairs)

    def test_nrbc_pairs_asymmetric_somewhere(self, ba, checker):
        alphabet = ba.ground_alphabet()
        pairs = checker.nrbc_pairs(alphabet)
        assert any((b, a) not in pairs for (a, b) in pairs)

    def test_relations_incomparable_on_ground_alphabet(self, ba, checker):
        alphabet = ba.ground_alphabet()
        nfc = checker.nfc_relation(alphabet)
        nrbc = checker.nrbc_relation(alphabet)
        assert incomparable(nfc, nrbc, alphabet)

    def test_derived_relation_names(self, ba, checker):
        alphabet = ba.ground_alphabet()
        assert "NFC" in checker.nfc_relation(alphabet).name
        assert "NRBC" in checker.nrbc_relation(alphabet).name

    def test_derived_vs_analytic_agreement(self, ba, checker):
        """The mechanically derived ground relation agrees with the
        analytic classifier relation on the ground alphabet."""
        alphabet = ba.ground_alphabet()
        derived = checker.nfc_relation(alphabet)
        analytic = ba.nfc_conflict()
        for a in alphabet:
            for b in alphabet:
                # The analytic relation is class-level, hence may be a
                # superset on ground pairs (conservative), never a subset.
                if derived.conflicts(a, b):
                    assert analytic.conflicts(a, b)


class TestNondeterministicSpec:
    def test_semiqueue_deq_deq_backward(self):
        sq = SemiQueue(domain=("a", "b"))
        checker = CommutativityChecker(
            sq, sq.invocation_alphabet(), context_depth=4, future_depth=4
        )
        assert checker.right_commutes_backward(sq.deq("a"), sq.deq("b"))
        assert checker.right_commutes_backward(sq.deq("a"), sq.deq("a"))
        assert not checker.commute_forward(sq.deq("a"), sq.deq("a"))

    def test_semiqueue_enq_fc_with_deq(self):
        sq = SemiQueue(domain=("a", "b"))
        checker = CommutativityChecker(
            sq, sq.invocation_alphabet(), context_depth=4, future_depth=4
        )
        assert checker.commute_forward(sq.enq("a"), sq.deq("a"))


class TestContexts:
    def test_contexts_exposed(self, checker):
        contexts = checker.contexts
        assert contexts[0].context == ()
        assert len(contexts) > 1
