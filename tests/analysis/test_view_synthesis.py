"""Tests for the view synthesizer: Theorems 9/10 re-derived by probing.

The synthesizer knows nothing about commutativity: it black-box-probes
the object automaton with a generalized form of the proofs' history
family and collects the pairs whose concurrency produces non-dynamic-
atomic histories.  On bounded domains its output must coincide exactly
with NRBC (for UIP) and NFC (for DU).
"""

import pytest

from repro.adts import BankAccount, SetADT
from repro.analysis.alphabet import reachable_macro_contexts, reachable_operations
from repro.analysis.view_synthesis import ViewSynthesizer
from repro.core.views import DU, SUIP, UIP


@pytest.fixture(scope="module")
def ba():
    return BankAccount(domain=(1,))


@pytest.fixture(scope="module")
def ba_setup(ba):
    invocations = ba.invocation_alphabet()
    contexts = reachable_macro_contexts(ba, invocations, max_depth=3)
    alphabet = reachable_operations(ba, invocations, max_depth=3)
    checker = ba.build_checker(context_depth=3, future_depth=3)
    return invocations, contexts, alphabet, checker


class TestSynthesisRecoversTheorems:
    def test_uip_requires_exactly_nrbc(self, ba, ba_setup):
        invocations, contexts, alphabet, checker = ba_setup
        syn = ViewSynthesizer(ba, UIP, invocations, contexts, rho_depth=2)
        required = set(syn.required_pairs(alphabet).keys())
        assert required == set(checker.nrbc_pairs(alphabet))

    def test_du_requires_exactly_nfc(self, ba, ba_setup):
        invocations, contexts, alphabet, checker = ba_setup
        syn = ViewSynthesizer(ba, DU, invocations, contexts, rho_depth=2)
        required = set(syn.required_pairs(alphabet).keys())
        assert required == set(checker.nfc_pairs(alphabet))

    def test_witnesses_are_genuine(self, ba, ba_setup):
        """Each synthesized pair carries a machine-checkable counterexample."""
        from repro.core.atomicity import is_dynamic_atomic

        invocations, contexts, alphabet, _ = ba_setup
        syn = ViewSynthesizer(ba, UIP, invocations, contexts, rho_depth=2)
        for pair, evidence in syn.required_pairs(alphabet).items():
            assert not is_dynamic_atomic(evidence.history, ba), str(pair)

    def test_commuting_pair_not_required(self, ba, ba_setup):
        invocations, contexts, alphabet, _ = ba_setup
        syn = ViewSynthesizer(ba, UIP, invocations, contexts, rho_depth=2)
        # Two successful withdrawals are UIP-safe (Figure 6-2).
        assert syn.probe_pair(ba.withdraw_ok(1), ba.withdraw_ok(1)) is None

    def test_required_relation_packaging(self, ba, ba_setup):
        invocations, contexts, alphabet, checker = ba_setup
        syn = ViewSynthesizer(ba, DU, invocations, contexts, rho_depth=2)
        relation = syn.required_relation(alphabet)
        assert relation.name.startswith("required(DU")
        assert relation.conflicts(ba.withdraw_ok(1), ba.withdraw_ok(1))


class TestNovelView:
    """Section 5's open question, answered for one new view."""

    def test_suip_requires_exactly_nfc(self, ba, ba_setup):
        """The strict-UIP view (committed effects in execution order, no
        dirty reads) requires exactly NFC on the bounded bank account:
        hiding other actives' effects makes the ordering difference
        between commit order and execution order unobservable for pairs
        that are allowed to be concurrent."""
        invocations, contexts, alphabet, checker = ba_setup
        syn = ViewSynthesizer(ba, SUIP, invocations, contexts, rho_depth=2)
        required = set(syn.required_pairs(alphabet).keys())
        assert required == set(checker.nfc_pairs(alphabet))

    def test_suip_does_not_need_nrbc_only_pairs(self, ba, ba_setup):
        invocations, contexts, alphabet, checker = ba_setup
        syn = ViewSynthesizer(ba, SUIP, invocations, contexts, rho_depth=2)
        assert syn.probe_pair(ba.withdraw_ok(1), ba.deposit(1)) is None

    def test_suip_view_semantics(self, ba):
        from repro.experiments.examples import section_5_history

        h = section_5_history()
        assert SUIP(h, "C") == (ba.deposit(5),)  # like DU for others
        assert SUIP(h, "B") == (ba.deposit(5), ba.withdraw_ok(3))  # own ops


class TestOnSecondADT:
    def test_set_du_synthesis_matches_nfc(self):
        s = SetADT(domain=("a",))
        invocations = s.invocation_alphabet()
        contexts = reachable_macro_contexts(s, invocations, max_depth=None)
        alphabet = reachable_operations(s, invocations, max_depth=None)
        checker = s.build_checker()
        syn = ViewSynthesizer(s, DU, invocations, contexts, rho_depth=2)
        assert set(syn.required_pairs(alphabet).keys()) == set(
            checker.nfc_pairs(alphabet)
        )

    def test_set_uip_synthesis_matches_nrbc(self):
        s = SetADT(domain=("a",))
        invocations = s.invocation_alphabet()
        contexts = reachable_macro_contexts(s, invocations, max_depth=None)
        alphabet = reachable_operations(s, invocations, max_depth=None)
        checker = s.build_checker()
        syn = ViewSynthesizer(s, UIP, invocations, contexts, rho_depth=2)
        assert set(syn.required_pairs(alphabet).keys()) == set(
            checker.nrbc_pairs(alphabet)
        )
