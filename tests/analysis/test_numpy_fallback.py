"""The pure-Python pairwise pass: numpy is strictly optional.

numpy ships as the ``repro[fast]`` extra; everything must keep working —
with identical verdicts — when it is absent.  Two gates are covered:

* ``REPRO_NO_NUMPY=1`` (checked per call, so ``monkeypatch.setenv``
  works mid-process) forces the scalar pass even with numpy installed;
* a subprocess with the numpy import *blocked* (``sys.modules["numpy"]
  = None``) proves no module in the import chain needs it.
"""

import os
import pathlib
import subprocess
import sys
import textwrap

import pytest

import repro

from repro.adts import BankAccount, KVStore
from repro.analysis.compile_tables import (
    ground_compiled,
    have_numpy,
    pairwise_matrix,
)
from repro.core import UIP, ObjectAutomaton
from repro.experiments.examples import section_3_3_history


def test_no_numpy_env_forces_scalar_pass(monkeypatch):
    ba = BankAccount("BA")
    relation = ba.nrbc_conflict()
    alphabet = ba.ground_alphabet()
    with_numpy = pairwise_matrix(relation, alphabet)
    monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    assert not have_numpy()
    scalar = pairwise_matrix(relation, alphabet)
    assert scalar == with_numpy
    with pytest.raises(RuntimeError):
        pairwise_matrix(relation, alphabet, vectorized=True)
    monkeypatch.delenv("REPRO_NO_NUMPY")
    # the gate is per-call: numpy-backed passes resume immediately
    assert pairwise_matrix(relation, alphabet) == with_numpy


def test_no_numpy_ground_tables_and_checker_identical(monkeypatch):
    spec = BankAccount("BA")
    relation = spec.nrbc_conflict()
    history = section_3_3_history()
    baseline = ObjectAutomaton.explain_rejection(
        spec, UIP, relation, history, pairwise="auto"
    )
    pairs_before = {
        (new, old)
        for new in spec.ground_alphabet()
        for old in spec.ground_alphabet()
        if ground_compiled(relation, spec.ground_alphabet()).conflicts(new, old)
    }
    monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    assert (
        ObjectAutomaton.explain_rejection(
            spec, UIP, relation, history, pairwise="auto"
        )
        == baseline
    )
    ground = ground_compiled(relation, spec.ground_alphabet())
    pairs_after = {
        (new, old)
        for new in spec.ground_alphabet()
        for old in spec.ground_alphabet()
        if ground.conflicts(new, old)
    }
    assert pairs_after == pairs_before


FALLBACK_SCRIPT = textwrap.dedent(
    """
    import sys
    sys.modules["numpy"] = None  # block the import before anything runs

    from repro.adts import BankAccount, KVStore
    from repro.analysis.compile_tables import have_numpy, pairwise_matrix
    from repro.core import UIP, ObjectAutomaton
    from repro.experiments.examples import section_3_3_history

    assert not have_numpy()
    for adt in (BankAccount("BA"), KVStore("KV")):
        relation = adt.nrbc_conflict()
        alphabet = adt.ground_alphabet()
        matrix = pairwise_matrix(relation, alphabet)
        for i, new in enumerate(alphabet):
            for j, old in enumerate(alphabet):
                assert matrix[i][j] == relation.conflicts(new, old)
    spec = BankAccount("BA")
    assert ObjectAutomaton.accepts(
        spec, UIP, spec.nrbc_conflict(), section_3_3_history(), pairwise="auto"
    ) == ObjectAutomaton.accepts(
        spec, UIP, spec.nrbc_conflict(), section_3_3_history()
    )
    print("FALLBACK-OK")
    """
)


def test_numpy_import_blocked_subprocess():
    """End to end with numpy unimportable: verdicts unchanged."""
    src = str(pathlib.Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p
    )
    result = subprocess.run(
        [sys.executable, "-c", FALLBACK_SCRIPT],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert result.returncode == 0, result.stderr
    assert "FALLBACK-OK" in result.stdout
