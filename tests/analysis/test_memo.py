"""Unit tests for the shared pairwise-verdict memo."""

import pytest

from repro.analysis.memo import PairMemo


def counting(verdict_fn):
    calls = []

    def compute_for(left, right):
        def thunk():
            calls.append((left, right))
            return verdict_fn(left, right)

        return thunk

    return calls, compute_for


class TestPairMemo:
    def test_caches_by_ordered_pair(self):
        memo = PairMemo()
        calls, compute = counting(lambda a, b: (a, b))
        assert memo.lookup("a", "b", compute("a", "b")) == ("a", "b")
        assert memo.lookup("a", "b", compute("a", "b")) == ("a", "b")
        assert calls == [("a", "b")]
        assert memo.stats() == {"entries": 1, "hits": 1, "misses": 1}

    def test_no_mirror_by_default(self):
        memo = PairMemo()
        calls, compute = counting(lambda a, b: (a, b))
        memo.lookup("a", "b", compute("a", "b"))
        assert memo.lookup("b", "a", compute("b", "a")) == ("b", "a")
        assert calls == [("a", "b"), ("b", "a")]

    def test_mirror_true_copies_verdict(self):
        memo = PairMemo(mirror=True)
        calls, compute = counting(lambda a, b: a < b)
        assert memo.lookup("a", "b", compute("a", "b")) is True
        # The mirrored entry answers without recomputing.
        assert memo.lookup("b", "a", compute("b", "a")) is True
        assert calls == [("a", "b")]
        assert len(memo) == 2

    def test_mirror_predicate(self):
        # Instance-level FC style: mirror only the clean (None) verdict.
        memo = PairMemo(mirror=lambda v: v is None)
        memo.lookup("a", "b", lambda: None)
        assert ("b", "a") in memo
        memo.lookup("c", "d", lambda: "violation(c,d)")
        assert ("d", "c") not in memo

    def test_mirror_never_overwrites(self):
        memo = PairMemo(mirror=True)
        memo.lookup("b", "a", lambda: "first")
        memo.lookup("a", "b", lambda: "second")
        assert memo.lookup("b", "a", lambda: pytest.fail("recompute")) == "first"

    def test_diagonal_not_double_counted(self):
        memo = PairMemo(mirror=True)
        memo.lookup("a", "a", lambda: True)
        assert len(memo) == 1

    def test_clear_keeps_counters(self):
        memo = PairMemo()
        memo.lookup("a", "b", lambda: 1)
        memo.lookup("a", "b", lambda: 1)
        memo.clear()
        assert len(memo) == 0
        assert memo.stats() == {"entries": 0, "hits": 1, "misses": 1}
