"""Incomparability of NFC and NRBC across the ADT library (Section 6.4)."""

import pytest

from repro.adts import (
    BankAccount,
    Counter,
    EscrowAccount,
    FifoQueue,
    KVStore,
    Register,
    SemiQueue,
    SetADT,
    Stack,
)
from repro.experiments.figures import incomparability_report

INCOMPARABLE = [
    pytest.param(lambda: BankAccount(), id="bank-account"),
    pytest.param(lambda: EscrowAccount(), id="escrow"),
    pytest.param(lambda: SetADT(), id="set"),
    pytest.param(lambda: KVStore(), id="kv-store"),
    pytest.param(lambda: FifoQueue(), id="fifo-queue"),
    pytest.param(lambda: SemiQueue(), id="semiqueue"),
    pytest.param(lambda: Stack(), id="stack"),
]

COINCIDING = [
    pytest.param(lambda: Counter(), id="counter"),
    pytest.param(lambda: Register(), id="register"),
]


@pytest.mark.parametrize("factory", INCOMPARABLE)
def test_nfc_nrbc_incomparable(factory):
    report = incomparability_report(factory())
    assert report.incomparable, report.render()


@pytest.mark.parametrize("factory", COINCIDING)
def test_nfc_nrbc_coincide_for_total_or_classical_types(factory):
    """Counter (total commutative updates) and register (classical rw):
    the recovery method places identical constraints."""
    report = incomparability_report(factory())
    assert not report.nfc_only and not report.nrbc_only


def test_bank_account_witness_pairs():
    report = incomparability_report(BankAccount())
    assert ("withdraw(i)/OK", "withdraw(i)/OK") in report.nfc_only
    assert ("withdraw(i)/NO", "withdraw(i)/OK") in report.nrbc_only


def test_semiqueue_witness_pairs():
    report = incomparability_report(SemiQueue())
    assert ("deq/x", "deq/x") in report.nfc_only
    assert ("deq/x", "enq(x)/ok") in report.nrbc_only


def test_report_renders(capsys):
    report = incomparability_report(BankAccount())
    text = report.render()
    assert "incomparable" in text and "True" in text
