"""Unit tests for macro-state and operation-alphabet enumeration."""

import pytest

from repro.adts import BankAccount, Register, SetADT
from repro.analysis.alphabet import (
    StateSpaceTooLarge,
    reachable_macro_contexts,
    reachable_operations,
)


class TestReachableMacroContexts:
    def test_first_entry_is_initial(self):
        ba = BankAccount(domain=(1,))
        contexts = reachable_macro_contexts(ba, ba.invocation_alphabet(), max_depth=2)
        assert contexts[0].context == ()
        assert contexts[0].macro == frozenset({0})

    def test_contexts_reach_their_macros(self):
        ba = BankAccount(domain=(1, 2))
        for mc in reachable_macro_contexts(ba, ba.invocation_alphabet(), max_depth=3):
            assert ba.states_after(mc.context) == mc.macro

    def test_shortest_representatives(self):
        ba = BankAccount(domain=(1,))
        contexts = reachable_macro_contexts(ba, ba.invocation_alphabet(), max_depth=4)
        depths = [mc.depth for mc in contexts]
        assert depths == sorted(depths)

    def test_depth_bound_respected(self):
        ba = BankAccount(domain=(1,))
        contexts = reachable_macro_contexts(ba, ba.invocation_alphabet(), max_depth=2)
        assert max(mc.depth for mc in contexts) <= 2
        # balances 0, 1, 2 reachable with deposits of 1
        macros = {mc.macro for mc in contexts}
        assert frozenset({2}) in macros
        assert frozenset({3}) not in macros

    def test_finite_spec_closes_without_bound(self):
        s = SetADT(domain=("a",))
        contexts = reachable_macro_contexts(s, s.invocation_alphabet(), max_depth=None)
        assert {mc.macro for mc in contexts} == {
            frozenset({frozenset()}),
            frozenset({frozenset({"a"})}),
        }

    def test_infinite_spec_hits_cap(self):
        ba = BankAccount(domain=(1,))
        with pytest.raises(StateSpaceTooLarge):
            reachable_macro_contexts(
                ba, ba.invocation_alphabet(), max_depth=None, max_states=10
            )

    def test_macro_states_unique(self):
        reg = Register()
        contexts = reachable_macro_contexts(reg, reg.invocation_alphabet())
        macros = [mc.macro for mc in contexts]
        assert len(macros) == len(set(macros))


class TestReachableOperations:
    def test_register_alphabet(self):
        reg = Register(domain=("u", "v"), initial="u")
        ops = reachable_operations(reg, reg.invocation_alphabet())
        assert reg.write("u") in ops
        assert reg.read("u") in ops
        assert reg.read("v") in ops  # reachable after a write

    def test_sorted_deterministic(self):
        reg = Register()
        a = reachable_operations(reg, reg.invocation_alphabet())
        b = reachable_operations(reg, reg.invocation_alphabet())
        assert a == b

    def test_unreachable_responses_absent(self):
        ba = BankAccount(domain=(1,))
        ops = reachable_operations(ba, ba.invocation_alphabet(), max_depth=2)
        assert ba.withdraw_ok(1) in ops
        assert ba.balance(2) in ops
        assert ba.balance(5) not in ops  # needs depth 5
