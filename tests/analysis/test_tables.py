"""Unit tests for conflict-table objects and rendering."""

import pytest

from repro.analysis.tables import (
    ConflictTable,
    OperationClass,
    render_ascii,
    render_markdown,
    table_from_pairs,
)
from repro.core.events import op


def sample_table():
    return table_from_pairs(
        "Sample", ["a", "b"], [("a", "b"), ("b", "a"), ("a", "a")]
    )


class TestOperationClass:
    def test_requires_instances(self):
        with pytest.raises(ValueError):
            OperationClass("empty", ())

    def test_str(self):
        cls = OperationClass("deposit", (op("X", "deposit", 1),))
        assert str(cls) == "deposit"


class TestConflictTable:
    def test_marked(self):
        t = sample_table()
        assert t.marked("a", "b")
        assert not t.marked("b", "b")

    def test_symmetry_check(self):
        assert sample_table().is_symmetric()
        asym = table_from_pairs("T", ["a", "b"], [("a", "b")])
        assert not asym.is_symmetric()

    def test_difference(self):
        t1 = sample_table()
        t2 = table_from_pairs("T", ["a", "b"], [("a", "b")])
        assert t1.difference(t2) == {("b", "a"), ("a", "a")}
        assert t2.difference(t1) == frozenset()

    def test_same_marks(self):
        t1 = table_from_pairs("X", ["a", "b"], [("a", "b")])
        t2 = table_from_pairs("Y", ["a", "b"], [("a", "b")])
        assert t1.same_marks(t2)  # titles may differ

    def test_unknown_labels_rejected(self):
        with pytest.raises(ValueError):
            table_from_pairs("T", ["a"], [("a", "zzz")])


class TestRendering:
    def test_ascii_contains_marks(self):
        text = render_ascii(sample_table())
        assert "Sample" in text
        assert "x" in text

    def test_ascii_row_alignment(self):
        text = render_ascii(sample_table())
        lines = text.splitlines()
        # header + 2 rows at the end
        assert lines[-1].startswith("b")
        assert lines[-2].startswith("a")

    def test_markdown_shape(self):
        md = render_markdown(sample_table())
        lines = md.splitlines()
        assert lines[0].startswith("| |")
        assert "**a**" in md

    def test_str_is_ascii(self):
        assert str(sample_table()) == sample_table().render_ascii()

    def test_markdown_method(self):
        assert sample_table().render_markdown() == render_markdown(sample_table())
