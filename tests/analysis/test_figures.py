"""The headline reproduction tests: Figures 6-1 and 6-2, pinned exactly."""

import pytest

from repro.adts import BankAccount
from repro.experiments.figures import (
    expected_figure_6_1,
    expected_figure_6_2,
    figure_6_1,
    figure_6_2,
)


class TestFigure61:
    def test_derived_matches_paper(self):
        assert figure_6_1().same_marks(expected_figure_6_1())

    def test_mark_count(self):
        """Seven x's in Figure 6-1 (counting both symmetric halves)."""
        assert len(expected_figure_6_1().marks) == 7

    def test_symmetric(self):
        assert expected_figure_6_1().is_symmetric()

    def test_specific_entries(self):
        t = figure_6_1()
        assert t.marked("withdraw(i)/OK", "withdraw(i)/OK")
        assert t.marked("deposit(i)/ok", "withdraw(i)/NO")
        assert t.marked("deposit(i)/ok", "balance/i")
        assert not t.marked("deposit(i)/ok", "deposit(i)/ok")
        assert not t.marked("deposit(i)/ok", "withdraw(i)/OK")
        assert not t.marked("withdraw(i)/OK", "withdraw(i)/NO")
        assert not t.marked("balance/i", "balance/i")

    def test_stable_across_domains(self):
        """The class-level table is the same for any nontrivial domain."""
        t_small = figure_6_1(BankAccount(domain=(1, 2)))
        t_default = expected_figure_6_1()
        assert t_small.marks == t_default.marks


class TestFigure62:
    def test_derived_matches_paper(self):
        assert figure_6_2().same_marks(expected_figure_6_2())

    def test_mark_count(self):
        assert len(expected_figure_6_2().marks) == 7

    def test_not_symmetric(self):
        assert not expected_figure_6_2().is_symmetric()

    def test_papers_worked_example(self):
        """'P does not right commute backward with Q, but Q does right
        commute backward with P' for P=withdraw/OK, Q=deposit."""
        t = figure_6_2()
        assert t.marked("withdraw(i)/OK", "deposit(i)/ok")
        assert not t.marked("deposit(i)/ok", "withdraw(i)/OK")

    def test_withdraw_ok_free_with_itself(self):
        assert not figure_6_2().marked("withdraw(i)/OK", "withdraw(i)/OK")

    def test_failed_withdrawals_transparent_to_balance(self):
        t = figure_6_2()
        assert not t.marked("withdraw(i)/NO", "balance/i")
        assert not t.marked("balance/i", "withdraw(i)/NO")


class TestFigureComparison:
    def test_incomparable(self):
        f1 = expected_figure_6_1().marks
        f2 = expected_figure_6_2().marks
        assert f1 - f2 == {
            ("withdraw(i)/OK", "withdraw(i)/OK"),
            ("withdraw(i)/NO", "deposit(i)/ok"),
        }
        assert f2 - f1 == {
            ("withdraw(i)/OK", "deposit(i)/ok"),
            ("withdraw(i)/NO", "withdraw(i)/OK"),
        }

    def test_rendered_forms_differ(self):
        assert figure_6_1().render_ascii() != figure_6_2().render_ascii()
