"""Unit tests for the exact (finite-state) decision procedure."""

import pytest

from repro.adts import BankAccount, KVStore, Register, SetADT
from repro.analysis.alphabet import StateSpaceTooLarge
from repro.analysis.checker import CommutativityChecker
from repro.analysis.finite import ExactChecker, is_finite_state


class TestFiniteness:
    def test_register_finite(self):
        reg = Register()
        assert is_finite_state(reg, reg.invocation_alphabet())

    def test_set_finite(self):
        s = SetADT(domain=("a", "b"))
        assert is_finite_state(s, s.invocation_alphabet())

    def test_kv_finite(self):
        kv = KVStore(keys=("k",), values=("u",))
        assert is_finite_state(kv, kv.invocation_alphabet())

    def test_bank_account_not_finite(self):
        ba = BankAccount(domain=(1,))
        assert not is_finite_state(ba, ba.invocation_alphabet(), max_states=50)

    def test_exact_checker_rejects_infinite(self):
        ba = BankAccount(domain=(1,))
        with pytest.raises(StateSpaceTooLarge):
            ExactChecker(ba, ba.invocation_alphabet(), max_states=50)


class TestExactVsBounded:
    def test_exact_agrees_with_bounded_on_set(self):
        """On a finite spec, deep-enough bounded checking equals exact."""
        s = SetADT(domain=("a", "b"))
        exact = ExactChecker(s, s.invocation_alphabet())
        bounded = CommutativityChecker(
            s, s.invocation_alphabet(), context_depth=4, future_depth=4
        )
        classes = s.operation_classes()
        assert exact.forward_table(classes).marks == bounded.forward_table(
            classes
        ).marks
        assert exact.backward_table(classes).marks == bounded.backward_table(
            classes
        ).marks

    def test_exact_verdicts_are_proofs(self):
        """Exact 'commutes' verdicts hold for arbitrarily long futures:
        spot-check with a long manual future."""
        reg = Register(domain=("u", "v"), initial="u")
        exact = ExactChecker(reg, reg.invocation_alphabet())
        assert exact.commute_forward(reg.read("u"), reg.read("u"))
        # And violations found exactly:
        assert exact.fc_violation(reg.write("u"), reg.write("v")) is not None

    def test_exact_on_kv(self):
        kv = KVStore(keys=("k",), values=("u", "v"))
        exact = ExactChecker(kv, kv.invocation_alphabet())
        assert exact.right_commutes_backward(kv.get_miss("k"), kv.put("k", "u"))
        assert exact.rbc_violation(kv.put("k", "u"), kv.get_miss("k")) is not None
