"""Unit tests for the bitmask table compiler (:mod:`repro.analysis.compile_tables`)."""

import pytest

from repro.adts import BankAccount, KVStore
from repro.analysis.compile_tables import (
    CompiledConflict,
    CompiledTable,
    compile_classifier,
    compile_table,
    ground_compiled,
    interpreted_forced,
    maybe_compile,
    pairwise_matrix,
)
from repro.analysis.tables import ConflictTable
from repro.core.conflict import ClassifierConflict, PredicateConflict
from repro.core.events import op
from repro.runtime.lock_manager import LockManager, resolve_compiled


def small_table():
    return ConflictTable(
        "toy",
        ("r", "w"),
        frozenset([("w", "w"), ("w", "r"), ("r", "w")]),
    )


# -- CompiledTable ---------------------------------------------------------------


def test_compile_table_roundtrip():
    table = small_table()
    compiled = compile_table(table)
    assert compiled.labels == table.labels
    assert set(compiled.marks()) == set(table.marks)
    assert compiled.to_conflict_table("toy") == table
    assert compiled.marked("w", "w") and not compiled.marked("r", "r")
    assert compiled.is_symmetric()


def test_compiled_table_validation():
    with pytest.raises(ValueError):
        CompiledTable(("a", "b"), (0,))  # length mismatch
    with pytest.raises(ValueError):
        CompiledTable(("a", "a"), (0, 0))  # duplicate labels


def test_asymmetric_table_detected():
    compiled = compile_table(
        ConflictTable("asym", ("a", "b"), frozenset([("a", "b")]))
    )
    assert not compiled.is_symmetric()
    assert compiled.conflicts_idx(0, 1) and not compiled.conflicts_idx(1, 0)


# -- CompiledConflict ------------------------------------------------------------


def classify_kind(operation):
    return operation.invocation.name


def test_unknown_label_grows_with_empty_row():
    compiled = CompiledConflict(
        classify_kind, compile_table(small_table()), name="toy"
    )
    stranger = op("X", "x", response="done")
    known = op("X", "w", 1)
    assert compiled.row_mask(stranger) == 0
    assert not compiled.conflicts(stranger, known)
    assert not compiled.conflicts(known, stranger)
    # the grown label is now part of the table universe
    assert "x" in compiled.labels
    assert compiled.held_bit(stranger) == 1 << compiled.class_index(stranger)


def test_unknown_label_errors_on_ground_tables():
    ba = BankAccount("BA")
    alphabet = ba.ground_alphabet()
    compiled = ground_compiled(ba.nrbc_conflict(), alphabet)
    with pytest.raises(KeyError):
        compiled.class_index(op("BA", "frobnicate", response="no"))


def test_on_unknown_validated():
    with pytest.raises(ValueError):
        CompiledConflict(
            classify_kind, compile_table(small_table()), on_unknown="ignore"
        )


def test_compile_classifier_grow_matches_matrix_miss():
    """A label outside the matrix answers False, like ClassifierConflict."""
    relation = ClassifierConflict(
        classify_kind, [("w", "w")], name="w-only"
    )
    compiled = compile_classifier(relation)
    w, r = op("X", "w"), op("X", "r", response="v")
    for new, old in ((w, w), (w, r), (r, w), (r, r)):
        assert compiled.conflicts(new, old) == relation.conflicts(new, old)


def test_maybe_compile_dispatch(monkeypatch):
    ba = BankAccount("BA")
    compiled = maybe_compile(ba.nrbc_conflict())
    assert isinstance(compiled, CompiledConflict)
    assert maybe_compile(compiled) is compiled  # pass-through
    assert maybe_compile(PredicateConflict(lambda a, b: True)) is None
    monkeypatch.setenv("REPRO_INTERPRETED_CONFLICTS", "1")
    assert interpreted_forced()
    assert maybe_compile(ba.nrbc_conflict()) is None


def test_refine_carried_through_compilation():
    kv = KVStore("KV")
    relation = kv.nrbc_conflict()
    compiled = compile_classifier(relation)
    assert compiled.refine is relation.refine
    write_a = op("KV", "put", "a", 1)
    write_b = op("KV", "put", "b", 1)
    assert compiled.conflicts(write_a, write_a) == relation.conflicts(
        write_a, write_a
    )
    assert compiled.conflicts(write_a, write_b) == relation.conflicts(
        write_a, write_b
    )
    # the refinement really fires: same key conflicts, different key not
    assert compiled.conflicts(write_a, write_a)
    assert not compiled.conflicts(write_a, write_b)


# -- resolve_compiled / LockManager modes ----------------------------------------


def test_resolve_compiled_contract():
    ba = BankAccount("BA")
    relation = ba.nrbc_conflict()
    assert resolve_compiled(relation, False) is None
    assert isinstance(resolve_compiled(relation, "auto"), CompiledConflict)
    assert isinstance(resolve_compiled(relation, True), CompiledConflict)
    prebuilt = compile_classifier(relation)
    assert resolve_compiled(relation, prebuilt) is prebuilt
    with pytest.raises(ValueError):
        resolve_compiled(PredicateConflict(lambda a, b: True), True)
    with pytest.raises(ValueError):
        resolve_compiled(relation, "sometimes")


def test_uncompilable_relation_falls_back_to_interpreted():
    manager = LockManager(PredicateConflict(lambda a, b: True, name="total"))
    assert manager.mode == "interpreted"
    manager.acquire("T1", op("X", "w"))
    assert manager.blockers("T2", op("X", "w")) == frozenset(["T1"])


def test_lock_manager_release_clears_masks():
    ba = BankAccount("BA")
    manager = LockManager(ba.nrbc_conflict())
    assert manager.mode == "compiled"
    deposit = op("BA", "deposit", 1)
    balance = op("BA", "balance", response=0)
    manager.acquire("T1", deposit)
    assert manager.blockers("T2", balance) == frozenset(["T1"])
    manager.release_all("T1")
    assert not manager.blockers("T2", balance)
    assert manager.held_by("T1") == ()


# -- pairwise pass ---------------------------------------------------------------


def test_pairwise_matrix_rectangular():
    ba = BankAccount("BA")
    relation = ba.nrbc_conflict()
    news = ba.ground_alphabet()[:3]
    olds = ba.ground_alphabet()
    matrix = pairwise_matrix(relation, news, olds, vectorized=False)
    assert len(matrix) == len(news) and len(matrix[0]) == len(olds)
    for i, new in enumerate(news):
        for j, old in enumerate(olds):
            assert matrix[i][j] == relation.conflicts(new, old)


def test_pairwise_vectorized_true_requires_compilable():
    with pytest.raises(ValueError):
        pairwise_matrix(
            PredicateConflict(lambda a, b: True),
            [op("X", "w")],
            vectorized=True,
        )


def test_pairwise_vectorized_true_requires_numpy(monkeypatch):
    monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    ba = BankAccount("BA")
    with pytest.raises(RuntimeError):
        pairwise_matrix(
            ba.nrbc_conflict(), ba.ground_alphabet(), vectorized=True
        )


def test_ground_compiled_dedupes_alphabet():
    ba = BankAccount("BA")
    alphabet = ba.ground_alphabet()
    doubled = tuple(alphabet) + tuple(alphabet)
    compiled = ground_compiled(ba.nrbc_conflict(), doubled)
    assert len(compiled.labels) == len(alphabet)
