"""Tests for the bench-trend gate (``benchmarks/check_trend.py``)."""

import importlib.util
import json
import pathlib

import pytest

_PATH = (
    pathlib.Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "check_trend.py"
)
_spec = importlib.util.spec_from_file_location("check_trend", _PATH)
check_trend = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_trend)


def _dirs(tmp_path, baseline, fresh):
    base_dir = tmp_path / "base"
    fresh_dir = tmp_path / "fresh"
    for directory, artifacts in ((base_dir, baseline), (fresh_dir, fresh)):
        directory.mkdir()
        for name, payload in artifacts.items():
            (directory / name).write_text(json.dumps(payload))
    return str(base_dir), str(fresh_dir)


RECORD = {
    "committed": 42,
    "cpus": 4,
    "floor_asserted": True,
    "times_s": {"1": 1.0, "2": 0.5},
    "speedup": {"2": 2.0},
    "curve": {"bank": {"queries": 100, "compiled_ops_per_s": 5000.0}},
}


class TestClassify:
    @pytest.mark.parametrize(
        "key, expected",
        [
            ("committed", "equality"),
            ("latency_ticks", "equality"),
            ("queries", "equality"),  # plural 's' is not '_s'
            ("times_s", "timing"),
            ("wall_s", "timing"),
            ("traced_s", "timing"),
            ("speedup", "timing"),
            ("ratio", "timing"),
            ("compiled_ops_per_s", "timing"),
            ("cpus", "environment"),
            ("floor_asserted", "environment"),
        ],
    )
    def test_field_classes(self, key, expected):
        assert check_trend.classify(key) == expected


class TestCompare:
    def test_identical_is_clean(self):
        fails, warns = check_trend.compare_artifact("x.json", RECORD, RECORD)
        assert fails == [] and warns == []

    def test_equality_drift_hard_fails(self):
        fresh = json.loads(json.dumps(RECORD))
        fresh["committed"] = 41
        fails, _ = check_trend.compare_artifact("x.json", RECORD, fresh)
        assert len(fails) == 1
        assert "committed" in fails[0]

    def test_environment_change_is_ignored(self):
        fresh = json.loads(json.dumps(RECORD))
        fresh["cpus"] = 1
        fresh["floor_asserted"] = False
        fails, warns = check_trend.compare_artifact("x.json", RECORD, fresh)
        assert fails == [] and warns == []

    def test_slower_time_warns_but_passes(self):
        fresh = json.loads(json.dumps(RECORD))
        fresh["times_s"]["2"] = 2.0  # 4x slower
        fails, warns = check_trend.compare_artifact("x.json", RECORD, fresh)
        assert fails == []
        assert len(warns) == 1 and "times_s.2" in warns[0]

    def test_lower_speedup_and_rate_warn(self):
        fresh = json.loads(json.dumps(RECORD))
        fresh["speedup"]["2"] = 1.0
        fresh["curve"]["bank"]["compiled_ops_per_s"] = 1000.0
        fails, warns = check_trend.compare_artifact("x.json", RECORD, fresh)
        assert fails == []
        assert len(warns) == 2

    def test_small_timing_noise_stays_quiet(self):
        fresh = json.loads(json.dumps(RECORD))
        fresh["times_s"]["2"] = 0.6  # 20% — inside the 25% band
        fails, warns = check_trend.compare_artifact("x.json", RECORD, fresh)
        assert fails == [] and warns == []


class TestMain:
    def test_clean_pass(self, tmp_path, capsys):
        artifacts = {"BENCH_a.json": RECORD}
        assert check_trend.main(list(_dirs(tmp_path, artifacts, artifacts))) == 0
        assert "0 failure(s)" in capsys.readouterr().out

    def test_missing_fresh_artifact_fails(self, tmp_path, capsys):
        base, fresh = _dirs(tmp_path, {"BENCH_a.json": RECORD}, {})
        assert check_trend.main([base, fresh]) == 1
        assert "not re-recorded" in capsys.readouterr().out

    def test_new_fresh_artifact_passes_with_note(self, tmp_path, capsys):
        base, fresh = _dirs(
            tmp_path,
            {"BENCH_a.json": RECORD},
            {"BENCH_a.json": RECORD, "BENCH_b.json": RECORD},
        )
        assert check_trend.main([base, fresh]) == 0
        assert "no baseline" in capsys.readouterr().out

    def test_no_baselines_is_usage_error(self, tmp_path):
        base, fresh = _dirs(tmp_path, {}, {})
        assert check_trend.main([base, fresh]) == 2

    def test_warning_uses_github_annotation(self, tmp_path, capsys):
        fresh_record = json.loads(json.dumps(RECORD))
        fresh_record["times_s"]["1"] = 10.0
        base, fresh = _dirs(
            tmp_path,
            {"BENCH_a.json": RECORD},
            {"BENCH_a.json": fresh_record},
        )
        assert check_trend.main([base, fresh]) == 0
        assert "::warning::" in capsys.readouterr().out
