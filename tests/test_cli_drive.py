"""CLI tests for ``repro drive`` (the open-loop sharded driver)."""

import json

import pytest

from repro.cli import main

SMALL = [
    "drive",
    "--transactions", "12",
    "--objects", "8",
    "--arrival-rate", "3",
]


def _out(capsys) -> str:
    return capsys.readouterr().out


def _stable(text: str) -> str:
    """Report output minus the wall-clock line (never byte-stable)."""
    return "\n".join(
        line for line in text.splitlines() if "wall clock" not in line
    )


class TestValidation:
    @pytest.mark.parametrize(
        "argv, match",
        [
            (["drive", "--adt", "nosuch"], "unknown ADT"),
            (["drive", "--shards", "0"], "--shards must be >= 1"),
            (["drive", "--objects", "0"], "--objects must be >= 1"),
            (["drive", "--arrival-rate", "0"], "--arrival-rate must be > 0"),
            (["drive", "--cross-shard", "1.5"], "--cross-shard must be in"),
            (["drive", "--zipf", "-1"], "--zipf must be >= 0"),
            (["drive", "--workers", "0"], "--workers must be >= 1"),
            (
                ["drive", "--workers", "2", "--cross-shard", "0.2"],
                "requires --cross-shard 0",
            ),
            (
                ["drive", "--workers", "2", "--trace-out", "x.jsonl"],
                "--trace-out requires --workers 1",
            ),
            (["drive", "--read-mix", "1.5"], "--read-mix must be in"),
            (["drive", "--read-mix", "-0.2"], "--read-mix must be in"),
            (
                ["drive", "--adt", "fifo", "--read-mix", "0.5"],
                "no read-only observer",
            ),
        ],
    )
    def test_rejects_bad_arguments(self, argv, match):
        with pytest.raises(SystemExit, match=match):
            main(argv)


class TestDrive:
    def test_smoke_reports_latency_percentiles(self, capsys):
        assert main(SMALL + ["--shards", "2"]) == 0
        out = _out(capsys)
        assert "open-loop drive" in out
        for token in ("p50", "p95", "p99", "shard"):
            assert token in out

    def test_deterministic_per_seed(self, capsys):
        args = SMALL + ["--shards", "2", "--zipf", "0.9"]
        assert main(args + ["--seed", "1"]) == 0
        first = _stable(_out(capsys))
        assert main(args + ["--seed", "1"]) == 0
        assert _stable(_out(capsys)) == first
        assert main(args + ["--seed", "2"]) == 0
        assert _stable(_out(capsys)) != first

    def test_seed_base_offset_equals_plain_seed(self, capsys):
        assert main(SMALL + ["--seed", "1", "--seed-base", "2"]) == 0
        offset = _stable(_out(capsys))
        assert main(SMALL + ["--seed", "3"]) == 0
        assert _stable(_out(capsys)) == offset

    def test_bursty_process_and_cross_shard(self, capsys):
        assert main(
            SMALL
            + [
                "--shards", "2",
                "--process", "bursty",
                "--burst-factor", "3",
                "--burst-period", "32",
                "--cross-shard", "0.5",
            ]
        ) == 0
        assert "open-loop drive" in _out(capsys)

    def test_trace_out_writes_schema_valid_events(self, tmp_path, capsys):
        path = tmp_path / "drive.jsonl"
        assert main(SMALL + ["--shards", "2", "--trace-out", str(path)]) == 0
        lines = path.read_text().strip().splitlines()
        assert lines
        kinds = {json.loads(line)["kind"] for line in lines}
        assert "drive-start" in kinds and "drive-end" in kinds
        # the trace reconciles through the standard reporter
        assert main(["trace-report", str(path)]) == 0
        assert "drive" in _out(capsys)

    def test_read_mix_reports_ro_line_and_reconciles(self, tmp_path, capsys):
        path = tmp_path / "ro.jsonl"
        args = SMALL + [
            "--adt", "counter",
            "--read-mix", "0.4",
            "--trace-out", str(path),
        ]
        assert main(args) == 0
        out = _out(capsys)
        assert "/ro0.4" in out
        assert "read-only" in out
        kinds = {
            json.loads(line)["kind"]
            for line in path.read_text().strip().splitlines()
        }
        assert "snapshot-read" in kinds and "ro-commit" in kinds
        # RO counters reconcile under the strict reporter.
        assert main(["trace-report", str(path), "--strict"]) == 0
        assert "read-only" in _out(capsys)

    def test_locked_baseline_label(self, capsys):
        args = SMALL + [
            "--adt", "counter",
            "--read-mix", "0.4",
            "--ro-mode", "locked",
        ]
        assert main(args) == 0
        assert "/ro0.4-locked" in _out(capsys)

    def test_partitioned_drive_matches_serial(self, capsys):
        args = SMALL + ["--shards", "2"]
        assert main(args) == 0
        serial = _out(capsys)
        assert main(args + ["--workers", "2"]) == 0
        parallel = _out(capsys)

        # committed/per-shard counters agree; wall-clock and the
        # workers count in the offered line legitimately differ
        def counters(text):
            return [
                line for line in text.splitlines()
                if line.startswith("committed") or "shard " in line
            ]

        assert counters(parallel) == counters(serial)


class TestReplicatedDrive:
    @pytest.mark.parametrize(
        "argv, match",
        [
            (SMALL + ["--sites", "0"], "--sites must be >= 1"),
            (
                SMALL + ["--sites", "2", "--shards", "2"],
                "pick one axis",
            ),
            (
                SMALL + ["--sites", "2", "--workers", "2"],
                "lockstep",
            ),
            (
                SMALL + ["--sites", "2", "--site-crash", "bogus"],
                "--site-crash must look like",
            ),
            (
                SMALL + ["--sites", "2", "--site-crash", "5@3"],
                "out of range",
            ),
            (
                SMALL + ["--sites", "2", "--site-crash", "1@9-4"],
                "after the fail tick",
            ),
        ],
    )
    def test_rejects_bad_replication_arguments(self, argv, match):
        with pytest.raises(SystemExit, match=match):
            main(argv)

    def test_replicated_drive_reports_per_site_rows(self, capsys):
        code = main(
            SMALL + ["--sites", "2", "--site-crash", "1@8-20", "--seed", "1"]
        )
        out = _out(capsys)
        assert code == 0
        assert "/x2/sc1" in out
        assert "availability" in out
        assert "site 0" in out and "site 1" in out

    def test_site_crash_without_sites_uses_replicated_path(self, capsys):
        # --site-crash alone (sites=1) models a total outage window
        code = main(SMALL + ["--site-crash", "0@5-12"])
        out = _out(capsys)
        assert code == 0
        assert "/sc1" in out
        assert "availability" in out
