"""Unit tests for workload generators (determinism and shape)."""

import random

import pytest

from repro.runtime.workloads import (
    escrow_workload,
    hotspot_banking,
    mixed_transfers,
    producer_consumer,
    set_membership_workload,
)


class TestDeterminism:
    @pytest.mark.parametrize(
        "generator",
        [
            lambda rng: hotspot_banking(rng),
            lambda rng: escrow_workload(rng),
            lambda rng: producer_consumer(rng),
            lambda rng: set_membership_workload(rng),
            lambda rng: mixed_transfers(rng),
        ],
    )
    def test_same_seed_same_workload(self, generator):
        a = generator(random.Random(42))
        b = generator(random.Random(42))
        assert a == b

    def test_different_seed_different_workload(self):
        a = hotspot_banking(random.Random(1))
        b = hotspot_banking(random.Random(2))
        assert a != b


class TestShapes:
    def test_hotspot_counts(self):
        scripts = hotspot_banking(random.Random(0), transactions=5, ops_per_txn=4)
        assert len(scripts) == 5
        assert all(len(s.steps) == 4 for s in scripts)
        assert all(obj == "BA" for s in scripts for obj, _ in s.steps)

    def test_hotspot_weights_respected(self):
        scripts = hotspot_banking(
            random.Random(0),
            transactions=20,
            ops_per_txn=5,
            deposit_weight=1.0,
            withdraw_weight=0.0,
            balance_weight=0.0,
        )
        names = {invocation.name for s in scripts for _, invocation in s.steps}
        assert names == {"deposit"}

    def test_producer_consumer_split(self):
        scripts = producer_consumer(
            random.Random(0), producers=3, consumers=2, ops_per_txn=2
        )
        producers = [s for s in scripts if s.name.startswith("P")]
        consumers = [s for s in scripts if s.name.startswith("C")]
        assert len(producers) == 3 and len(consumers) == 2
        assert all(
            invocation.name == "enq" for s in producers for _, invocation in s.steps
        )
        assert all(
            invocation.name == "deq" for s in consumers for _, invocation in s.steps
        )

    def test_mixed_transfers_two_distinct_objects(self):
        scripts = mixed_transfers(random.Random(0), transactions=10)
        for s in scripts:
            (src, w), (dst, d) = s.steps
            assert src != dst
            assert w.name == "withdraw" and d.name == "deposit"
            assert w.args == d.args

    def test_set_workload_elements(self):
        scripts = set_membership_workload(
            random.Random(0), elements=("x", "y"), transactions=4
        )
        for s in scripts:
            for _, invocation in s.steps:
                assert invocation.args[0] in ("x", "y")

    def test_escrow_names(self):
        scripts = escrow_workload(random.Random(0), transactions=4)
        names = {invocation.name for s in scripts for _, invocation in s.steps}
        assert names <= {"credit", "debit"}
