"""Tests for multi-site replication (:mod:`repro.runtime.replication`).

The load-bearing properties: at ``sites=1`` the replicated system is
byte-identical to the flat crashable system (replication is pure
routing metadata until a second copy exists); with real copies, the
available-copies protocol serves writes at every in-service copy and
reads at one read-qualified copy, resolves site crashes by the
surviving-commit-record rule, and — the recovery rule under test —
lets a recovered copy serve writes immediately but reads only after a
committed write re-qualifies it.
"""

import random

import pytest

from repro.core.events import inv
from repro.runtime.durability import CrashableSystem, DurableObject
from repro.runtime.replication import (
    ReplicatedSystem,
    ReplicationError,
    build_replicated_system,
    copy_name,
)
from repro.runtime.scheduler import Scheduler
from repro.runtime.torture import (
    TortureConfig,
    build_replicated_torture_system,
    workload_for,
)
from repro.runtime.trace import TraceCollector
from repro.runtime.wal import GroupCommitPolicy, StableLog
from repro.adts.registry import make_adt


def _build(names=("X",), *, sites=2, recovery="DU", group_commit=1, hold=4):
    return build_replicated_system(
        "counter",
        list(names),
        sites=sites,
        recovery=recovery,
        group_commit=group_commit,
        hold=hold,
    )


def _commit_writes(system, txn, name, *amounts):
    for amount in amounts:
        assert system.invoke(txn, name, inv("increment", amount)).ok
    assert system.commit(txn) is True


# ---------------------------------------------------------------------------
# construction and naming
# ---------------------------------------------------------------------------


def test_copy_names_site_zero_keeps_logical_name():
    assert copy_name("X", 0) == "X"
    assert copy_name("X", 3) == "X@s3"


def test_builder_validates_sites():
    with pytest.raises(ValueError, match="sites"):
        build_replicated_system("counter", ["X"], sites=0)


def test_copies_partition_over_sites():
    system = _build(["X", "Y"], sites=3)
    assert system.copies_of("X") == ("X", "X@s1", "X@s2")
    assert system.logical_names() == ("X", "Y")
    assert system.site_of_copy("Y@s2") == 2
    for site in range(3):
        assert system.site_up(site)


# ---------------------------------------------------------------------------
# sites=1 byte-identity
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_sites1_is_byte_identical_to_flat_system(seed):
    config = TortureConfig(
        "bank",
        "DU",
        transactions=6,
        ops_per_txn=3,
        group_commit=2,
        hold=3,
        sites=1,
    )

    def run(system, adt):
        scripts = workload_for(config, adt, random.Random(seed))
        metrics = Scheduler(system, scripts, seed=seed).run()
        events = {
            n: [str(e) for e in system.objects[n].history().events]
            for n in system.objects
        }
        return metrics, events

    adt = make_adt("bank", "X")
    policy = GroupCommitPolicy(2, 3)
    flat = CrashableSystem(
        [
            DurableObject(
                adt,
                adt.nfc_conflict(),
                "DU",
                log_factory=lambda: StableLog(policy=policy),
            )
        ]
    )
    replicated, rep_adt = build_replicated_torture_system(config)
    m_rep, h_rep = run(replicated, rep_adt)
    m_flat, h_flat = run(flat, adt)
    assert h_rep == h_flat
    assert m_rep == m_flat


# ---------------------------------------------------------------------------
# routing: write-all-available, read-one
# ---------------------------------------------------------------------------


def test_writes_mirror_to_every_copy_reads_touch_one():
    system = _build(sites=3)
    rng = random.Random(0)
    assert system.invoke("T1", "X", inv("increment", 1), rng).ok
    assert system._touched["T1"] == {"X", "X@s1", "X@s2"}
    assert system.commit("T1") is True
    assert system.invoke("T2", "X", inv("read"), rng).ok
    assert len(system._touched["T2"]) == 1
    assert system.commit("T2") is True
    # lockstep: every copy restored/holds the same committed state
    tips = {system.objects[c].committed_tip for c in system.copies_of("X")}
    assert len(tips) == 1


def test_unknown_logical_object_is_rejected():
    system = _build()
    from repro.runtime.errors import UnknownObjectError

    with pytest.raises(UnknownObjectError):
        system.invoke("T1", "Z", inv("read"), random.Random(0))


# ---------------------------------------------------------------------------
# site failure: the surviving-commit-record rule
# ---------------------------------------------------------------------------


def test_fail_site_kills_unprepared_transaction_everywhere():
    system = _build(group_commit=8, hold=100)
    assert system.invoke("T1", "X", inv("increment", 1), random.Random(0)).ok
    victims = system.fail_site(1)
    assert victims == {"T1"}
    assert system.status("T1") == "aborted"
    assert not system.objects["X"].locks.holders()
    assert system.site_failures[1] == 1


def test_fail_site_during_prepare_held_batch_kills():
    # group_commit=8, hold=100: prepare forces sit in held batches, so
    # no commit record is durable anywhere when the site dies.
    system = _build(group_commit=8, hold=100)
    assert system.invoke("T1", "X", inv("increment", 1), random.Random(0)).ok
    assert system.commit("T1") is False  # parked on the prepare flush
    victims = system.fail_site(1)
    assert victims == {"T1"}
    assert system.status("T1") == "aborted"
    for name in system.copies_of("X"):
        assert "T1" in system.objects[name].history().aborted()


def test_fail_site_mid_commit_completes_from_surviving_record():
    # Drive 2PC past prepare (hold expiry flushes the batch) into
    # submit: commit records parked at both sites.  The failed site
    # loses its volatile tail, but the healthy site's record survives
    # (its process is alive), so resolution completes the commit.
    system = _build(group_commit=8, hold=2)
    assert system.invoke("T1", "X", inv("increment", 1), random.Random(0)).ok
    assert system.commit("T1") is False
    for _ in range(3):
        system.tick()  # hold expiry: prepare batch flushes
    assert system.commit("T1") is False  # submit: commit records parked
    victims = system.fail_site(1)
    assert victims == set()
    assert system.status("T1") == "committed"
    assert system.objects["X"].wal.has_durable_commit("T1")
    assert "T1" in system.objects["X"].history().committed()


def test_fail_site_completes_commit_past_the_commit_point():
    system = _build(group_commit=8, hold=100)
    assert system.invoke("T1", "X", inv("increment", 1), random.Random(0)).ok
    assert system.commit("T1") is False
    for name in system.copies_of("X"):
        system.objects[name].wal.log.force()  # prepare durability lands
    assert system.commit("T1") is False  # submit: records parked
    system.objects["X@s1"].wal.log.force()  # the commit point
    victims = system.fail_site(0)
    assert victims == set()
    assert system.status("T1") == "committed"
    assert "T1" in system.objects["X@s1"].history().committed()


def test_fail_site_spares_read_only_traffic_elsewhere():
    system = _build()
    _commit_writes(system, "W", "X", 1)
    reader = "R1"
    system.begin_readonly(reader)
    out = system.snapshot_read(reader, "X", inv("read"))
    assert out.ok
    observed_site = system.site_of_copy(system._ro_observations[reader][0][0])
    other = 1 - observed_site
    victims = system.fail_site(other)
    assert reader not in victims
    system.finish_readonly(reader)
    assert system.status(reader) == "committed"


def test_fail_site_kills_readers_that_observed_it():
    system = _build()
    _commit_writes(system, "W", "X", 1)
    system.begin_readonly("R1")
    assert system.snapshot_read("R1", "X", inv("read")).ok
    observed_site = system.site_of_copy(system._ro_observations["R1"][0][0])
    victims = system.fail_site(observed_site)
    assert "R1" in victims


# ---------------------------------------------------------------------------
# recovery: writes immediately, reads only after a committed write
# ---------------------------------------------------------------------------


def test_recovered_copy_serves_writes_but_not_reads():
    system = _build()
    rng = random.Random(0)
    _commit_writes(system, "T1", "X", 1)
    system.fail_site(1)
    _commit_writes(system, "T2", "X", 2)  # the copy misses this commit
    system.recover_site(1)
    assert system.is_current("X@s1")  # caught up: in lockstep again
    assert not system.is_qualified("X@s1")  # but not serving reads
    # catch-up replayed the missed commit into the copy's own state
    assert (
        system.objects["X@s1"].committed_tip
        == system.objects["X"].committed_tip
    )
    # reads route around it
    assert system.invoke("T3", "X", inv("read"), rng).ok
    assert "X@s1" not in system._touched["T3"]
    assert system.commit("T3") is True
    # a write lands at the copy immediately...
    assert system.invoke("T4", "X", inv("increment", 3), rng).ok
    assert "X@s1" in system._touched["T4"]
    assert not system.is_qualified("X@s1")  # ...but only its *commit*
    assert system.commit("T4") is True
    assert system.is_qualified("X@s1")  # re-qualifies the copy
    assert system.requalifications[1] == 1


def test_aborted_write_does_not_requalify():
    system = _build()
    rng = random.Random(0)
    _commit_writes(system, "T1", "X", 1)
    system.fail_site(1)
    system.recover_site(1)
    assert system.invoke("T2", "X", inv("increment", 1), rng).ok
    system.abort("T2")
    assert not system.is_qualified("X@s1")


def test_write_then_read_round_trip_after_recovery():
    system = _build()
    rng = random.Random(0)
    _commit_writes(system, "T1", "X", 5)
    system.fail_site(1)
    _commit_writes(system, "T2", "X", 7)
    system.recover_site(1)
    _commit_writes(system, "T3", "X", 11)  # re-qualifies X@s1
    # force reads onto the recovered copy by failing the other site
    system.fail_site(0)
    out = system.invoke("T4", "X", inv("read"), rng)
    assert out.ok
    assert out.operation.response == 5 + 7 + 11  # nothing stale
    assert system._touched["T4"] == {"X@s1"}


# ---------------------------------------------------------------------------
# double failure: every copy down
# ---------------------------------------------------------------------------


def test_all_sites_down_blocks_cleanly():
    system = _build()
    rng = random.Random(0)
    _commit_writes(system, "T1", "X", 1)
    system.fail_site(0)
    system.fail_site(1)
    for invocation in (inv("read"), inv("increment", 1)):
        out = system.invoke("T2", "X", invocation, rng)
        assert out.status == "blocked"
        assert not out.blockers  # nothing to wait out but recovery
    system.abort("T2")  # the scheduler's aging victim path
    assert system.status("T2") == "aborted"


def test_no_qualified_copy_blocks_reads_until_a_commit():
    system = _build()
    rng = random.Random(0)
    _commit_writes(system, "T1", "X", 1)
    system.fail_site(0)
    system.fail_site(1)
    system.recover_site(0)
    system.recover_site(1)
    # both copies recovered, neither re-qualified: reads wait ...
    assert system.invoke("T2", "X", inv("read"), rng).status == "blocked"
    # ... writes proceed, and their commit re-opens the read path
    _commit_writes(system, "T3", "X", 2)
    out = system.invoke("T4", "X", inv("read"), rng)
    assert out.ok
    assert out.operation.response == 3


# ---------------------------------------------------------------------------
# snapshot reads route only to read-qualified copies at the CSN cut
# ---------------------------------------------------------------------------


def test_snapshot_reader_avoids_requalified_copy_with_older_snapshot():
    system = _build(["Y"])
    _commit_writes(system, "W1", "Y", 1)
    system.fail_site(1)
    _commit_writes(system, "W2", "Y", 1)  # missed by the down copy
    system.begin_readonly("R_old")  # snapshot before re-qualification
    system.recover_site(1)
    _commit_writes(system, "W3", "Y", 1)  # re-qualifies Y@s1
    out = system.snapshot_read("R_old", "Y", inv("read"))
    assert out.ok
    # the requalified copy's chain has a gap below its requalification
    # CSN; the old snapshot must be served by the never-failed copy
    assert system._ro_observations["R_old"][0][0] == "Y"
    system.finish_readonly("R_old")
    assert system.status("R_old") == "committed"


def test_snapshot_reader_uses_requalified_copy_for_fresh_snapshot():
    system = _build(["Y"])
    _commit_writes(system, "W1", "Y", 1)
    system.fail_site(1)
    _commit_writes(system, "W2", "Y", 1)
    system.recover_site(1)
    _commit_writes(system, "W3", "Y", 1)
    system.fail_site(0)  # only the requalified copy remains
    system.begin_readonly("R_new")
    out = system.snapshot_read("R_new", "Y", inv("read"))
    assert out.ok
    assert system._ro_observations["R_new"][0][0] == "Y@s1"
    system.finish_readonly("R_new")
    assert system.status("R_new") == "committed"


# ---------------------------------------------------------------------------
# administrative edges
# ---------------------------------------------------------------------------


def test_double_fail_and_double_recover_are_rejected():
    system = _build()
    system.fail_site(1)
    with pytest.raises(ReplicationError, match="already down"):
        system.fail_site(1)
    system.recover_site(1)
    with pytest.raises(ReplicationError, match="already up"):
        system.recover_site(1)


def test_whole_system_crash_requires_all_sites_up():
    system = _build()
    system.fail_site(1)
    with pytest.raises(ReplicationError, match="recover all sites"):
        system.crash()
    system.recover_site(1)
    system.crash()  # fine once every site is back


# ---------------------------------------------------------------------------
# trace events
# ---------------------------------------------------------------------------


def test_site_failure_and_requalification_emit_trace_events():
    system = _build()
    trace = TraceCollector()
    system.bind_trace(trace)
    _commit_writes(system, "T1", "X", 1)
    system.fail_site(1)
    system.recover_site(1)
    _commit_writes(system, "T2", "X", 2)
    kinds = [e["kind"] for e in trace.events]
    assert "site-failure" in kinds
    assert "site-recovery" in kinds
    assert "copy-requalified" in kinds
    requalified = next(
        e for e in trace.events if e["kind"] == "copy-requalified"
    )
    assert requalified["obj"] == "X"
    assert requalified["site"] == 1
