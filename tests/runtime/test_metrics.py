"""Unit tests for run metrics and aggregation."""

from dataclasses import fields

import pytest

from repro.runtime.metrics import (
    FaultCounters,
    MetricsSummary,
    RunMetrics,
    format_summary_table,
    summarize,
)


class TestRunMetrics:
    def test_throughput(self):
        m = RunMetrics(ticks=10, committed=5)
        assert m.throughput == 0.5

    def test_throughput_zero_ticks(self):
        assert RunMetrics().throughput == 0.0

    def test_abort_rate(self):
        m = RunMetrics(committed=3, aborted=1)
        assert m.abort_rate == 0.25

    def test_abort_rate_no_transactions(self):
        assert RunMetrics().abort_rate == 0.0

    def test_row(self):
        m = RunMetrics(label="x", ticks=4, committed=2)
        row = m.row()
        assert row[0] == "x" and row[-1] == 0.5

    def test_row_carries_every_counter(self):
        # Regression: row() used to silently drop counters added after
        # the seed (stuck_aborts, commit_stall_ticks, force accounting).
        m = RunMetrics(label="x")
        for name in m.counters():
            setattr(m, name, 7)
        row = m.row()
        assert row.count(7) == len(m.counters())

    def test_counters_lists_every_int_field(self):
        m = RunMetrics()
        int_fields = {
            spec.name for spec in fields(RunMetrics) if spec.type == "int"
        }
        assert set(m.counters()) == int_fields
        assert "stuck_aborts" in int_fields
        assert "crash_aborts" in int_fields
        assert "forced_records" in int_fields


class TestSummarize:
    def test_aggregates(self):
        runs = [
            RunMetrics(ticks=10, committed=5, blocked_attempts=2),
            RunMetrics(ticks=20, committed=5, blocked_attempts=4),
        ]
        s = summarize("cfg", runs)
        assert s.runs == 2
        assert s.mean_throughput == pytest.approx((0.5 + 0.25) / 2)
        assert s.min_throughput == 0.25
        assert s.max_throughput == 0.5
        assert s.mean_ticks == 15
        assert s.mean_blocked == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize("cfg", [])

    def test_no_counter_lost_in_aggregation(self):
        # Regression: summarize() used to drop stuck_aborts,
        # commit_stall_ticks and the force accounting entirely.  Every
        # RunMetrics counter must surface as a mean_* field.
        run = RunMetrics(ticks=1)
        for name in run.counters():
            setattr(run, name, 6)
        s = summarize("cfg", [run, run])
        for name in run.counters():
            mean_name = {
                "blocked_attempts": "mean_blocked",
                "aborted": "mean_aborted",
            }.get(name, "mean_" + name)
            assert hasattr(s, mean_name), "summary lost %s" % name
            assert getattr(s, mean_name) == 6.0

    def test_fault_counters_merge_across_seeds(self):
        # Regression: summarize() used to discard FaultCounters.
        runs = [
            RunMetrics(ticks=1, faults=FaultCounters(crashes=2, io_errors=1)),
            RunMetrics(ticks=1),  # a seed without fault injection
            RunMetrics(ticks=1, faults=FaultCounters(crashes=1, torn_forces=3)),
        ]
        s = summarize("cfg", runs)
        assert s.faults is not None
        assert s.faults.crashes == 3
        assert s.faults.io_errors == 1
        assert s.faults.torn_forces == 3

    def test_no_faults_stays_none(self):
        s = summarize("cfg", [RunMetrics(ticks=1)])
        assert s.faults is None


class TestFormatting:
    def test_table_sorted_by_throughput(self):
        summaries = [
            summarize("slow", [RunMetrics(ticks=10, committed=1)]),
            summarize("fast", [RunMetrics(ticks=10, committed=9)]),
        ]
        text = format_summary_table(summaries)
        assert text.index("fast") < text.index("slow")

    def test_table_has_headers(self):
        text = format_summary_table(
            [summarize("cfg", [RunMetrics(ticks=1, committed=1)])]
        )
        assert "thruput" in text and "ticks" in text

    def test_all_zero_columns_omitted(self):
        # A clean failure-free run renders the narrow classic table.
        text = format_summary_table(
            [summarize("cfg", [RunMetrics(ticks=1, committed=1)])]
        )
        for header in ("deadlocks", "stuck", "stalls", "forces", "crash-ab"):
            assert header not in text

    def test_nonzero_columns_appear(self):
        run = RunMetrics(
            ticks=5,
            committed=1,
            deadlocks=2,
            stuck_aborts=1,
            commit_stall_ticks=4,
            forces=3,
            force_requests=6,
            forced_records=9,
            crash_aborts=1,
        )
        text = format_summary_table([summarize("cfg", [run])])
        for header in (
            "deadlocks",
            "stuck",
            "stalls",
            "forces",
            "f-req",
            "f-rec",
            "crash-ab",
        ):
            assert header in text, "missing column %s" % header
        # A column present for one summary renders for all rows.
        assert "9.0" in text
