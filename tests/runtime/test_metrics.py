"""Unit tests for run metrics and aggregation."""

import pytest

from repro.runtime.metrics import (
    MetricsSummary,
    RunMetrics,
    format_summary_table,
    summarize,
)


class TestRunMetrics:
    def test_throughput(self):
        m = RunMetrics(ticks=10, committed=5)
        assert m.throughput == 0.5

    def test_throughput_zero_ticks(self):
        assert RunMetrics().throughput == 0.0

    def test_abort_rate(self):
        m = RunMetrics(committed=3, aborted=1)
        assert m.abort_rate == 0.25

    def test_abort_rate_no_transactions(self):
        assert RunMetrics().abort_rate == 0.0

    def test_row(self):
        m = RunMetrics(label="x", ticks=4, committed=2)
        row = m.row()
        assert row[0] == "x" and row[-1] == 0.5


class TestSummarize:
    def test_aggregates(self):
        runs = [
            RunMetrics(ticks=10, committed=5, blocked_attempts=2),
            RunMetrics(ticks=20, committed=5, blocked_attempts=4),
        ]
        s = summarize("cfg", runs)
        assert s.runs == 2
        assert s.mean_throughput == pytest.approx((0.5 + 0.25) / 2)
        assert s.min_throughput == 0.25
        assert s.max_throughput == 0.5
        assert s.mean_ticks == 15
        assert s.mean_blocked == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize("cfg", [])


class TestFormatting:
    def test_table_sorted_by_throughput(self):
        summaries = [
            summarize("slow", [RunMetrics(ticks=10, committed=1)]),
            summarize("fast", [RunMetrics(ticks=10, committed=9)]),
        ]
        text = format_summary_table(summaries)
        assert text.index("fast") < text.index("slow")

    def test_table_has_headers(self):
        text = format_summary_table(
            [summarize("cfg", [RunMetrics(ticks=1, committed=1)])]
        )
        assert "thruput" in text and "deadlocks" in text
