"""Group commit: the batching engine, the ticket protocol, and parity.

Three layers of coverage:

* **log level** — :class:`~repro.runtime.wal.GroupCommitPolicy`
  validation, ticket satisfaction (a ticket is satisfied only by a
  *completed* physical flush), batch-full and hold-timer flush triggers,
  and the held batch dying as the volatile tail at a crash;
* **system level** — a commit is never acknowledged before its commit
  record's batch has flushed; a crash with the batch still held resolves
  the transaction as aborted (commit-point-first ordering);
* **parity** — batch size 1 reproduces the unbatched engine byte for
  byte: identical log records, physical flushes, events and metrics.

Torn *batched* forces (fault injection meeting group commit) live here
too: one tear increments ``torn_forces`` once, loses only the unflushed
suffix of the batch, and never lets a commit whose record was lost be
acknowledged.
"""

from __future__ import annotations

import random

import pytest

from repro.adts.registry import make_adt
from repro.core.events import inv
from repro.runtime.durability import CrashableSystem, DurableObject
from repro.runtime.faults import CrashPoint, FaultPlan, FaultyStableLog
from repro.runtime.metrics import FaultCounters
from repro.runtime.scheduler import Scheduler, TransactionScript
from repro.runtime.wal import CommitRecord, GroupCommitPolicy, StableLog


def record_maker(tag: str):
    return lambda lsn: CommitRecord(lsn, txn=tag)


# ---------------------------------------------------------------------------
# policy and ticket protocol
# ---------------------------------------------------------------------------


def test_policy_validation():
    with pytest.raises(ValueError):
        GroupCommitPolicy(batch_size=0)
    with pytest.raises(ValueError):
        GroupCommitPolicy(batch_size=1, max_hold=-1)
    assert not GroupCommitPolicy(1, 5).is_batching
    assert GroupCommitPolicy(2, 0).is_batching


def test_batch_fills_and_flushes():
    log = StableLog(policy=GroupCommitPolicy(batch_size=3, max_hold=10))
    tickets = []
    for i in range(3):
        log.append(record_maker("T%d" % i))
        tickets.append(log.request_force())
    # The first two requests were held; the third filled the batch.
    assert log.forces == 1
    assert log.force_requests == 3
    assert log.forced_records == 3
    assert log.held_batch_size() == 0
    assert all(log.flushed(t) for t in tickets)


def test_ticket_unsatisfied_until_flush():
    log = StableLog(policy=GroupCommitPolicy(batch_size=4, max_hold=10))
    log.append(record_maker("T0"))
    ticket = log.request_force()
    assert not log.flushed(ticket)
    assert log.held_batch_size() == 1
    assert log.forces == 0
    log.force()  # explicit flush absorbs the held batch
    assert log.flushed(ticket)
    assert log.held_batch_size() == 0


def test_hold_timer_flushes_short_batch():
    log = StableLog(policy=GroupCommitPolicy(batch_size=4, max_hold=2))
    log.append(record_maker("T0"))
    ticket = log.request_force()
    log.tick()  # hold tick 1
    log.tick()  # hold tick 2 (== max_hold: still held)
    assert not log.flushed(ticket)
    log.tick()  # hold expired: flush fires
    assert log.flushed(ticket)
    assert log.forces == 1
    # An idle log's timer does not run.
    for _ in range(5):
        log.tick()
    assert log.forces == 1


def test_batch_one_flushes_immediately():
    log = StableLog(policy=GroupCommitPolicy(batch_size=1))
    log.append(record_maker("T0"))
    ticket = log.request_force()
    assert log.flushed(ticket)
    assert log.forces == 1
    assert log.crash() == 0  # durable-on-append is preserved


def test_crash_drops_held_batch():
    log = StableLog(policy=GroupCommitPolicy(batch_size=4, max_hold=10))
    log.append(record_maker("T0"))
    flushed_ticket = log.request_force()
    log.force()
    log.append(record_maker("T1"))
    log.append(record_maker("T2"))
    held_ticket = log.request_force()
    assert log.flushed(flushed_ticket) and not log.flushed(held_ticket)
    lost = log.crash()
    assert lost == 2  # the held batch was the volatile tail
    assert [r.txn for r in log.records()] == ["T0"]
    assert log.held_batch_size() == 0
    assert not log.flushed(held_ticket)  # the dead batch never satisfies


# ---------------------------------------------------------------------------
# system level: acknowledgment ordering and crash resolution
# ---------------------------------------------------------------------------


def durable_bank(policy, recovery="DU"):
    adt = make_adt("bank")
    conflict = adt.nrbc_conflict() if recovery == "UIP" else adt.nfc_conflict()
    obj = DurableObject(
        adt, conflict, recovery, log_factory=lambda: StableLog(policy=policy)
    )
    return obj, CrashableSystem([obj])


@pytest.mark.parametrize("recovery", ["DU", "UIP"])
def test_commit_waits_for_batch_flush(recovery):
    """``commit`` stays pending until the hold timer flushes the batch,
    and the transaction is acknowledged only after that flush."""
    obj, system = durable_bank(GroupCommitPolicy(8, max_hold=2), recovery)
    rng = random.Random(0)
    assert system.invoke("T1", obj.name, inv("deposit", 5), rng).ok
    stalls = 0
    while not system.commit("T1"):
        assert system.status("T1") == "active"
        system.tick()
        stalls += 1
        assert stalls < 20, "commit never acknowledged"
    assert stalls > 0  # the batch was actually held across ticks
    assert system.status("T1") == "committed"
    assert obj.wal.has_durable_commit("T1")
    assert obj.wal.log.held_batch_size() == 0


@pytest.mark.parametrize("recovery", ["DU", "UIP"])
def test_crash_with_held_batch_aborts_transaction(recovery):
    """A crash while the commit's batch is still held resolves the
    transaction as aborted: nothing was acknowledged, nothing survives."""
    obj, system = durable_bank(GroupCommitPolicy(8, max_hold=50), recovery)
    rng = random.Random(0)
    assert system.invoke("T1", obj.name, inv("deposit", 5), rng).ok
    assert not system.commit("T1")  # pending on the held batch
    victims = system.crash()
    assert "T1" in victims
    assert system.status("T1") == "aborted"
    assert not obj.wal.has_durable_commit("T1")
    # Restart state shows no trace of the unacknowledged deposit.
    outcome = system.invoke("T2", obj.name, inv("balance"), rng)
    assert outcome.ok
    assert outcome.operation.response == 0


def test_durable_commit_survives_crash_after_flush():
    """Once the batch flushes and the commit is acknowledged, a crash
    must preserve it — the other half of the acknowledgment contract."""
    obj, system = durable_bank(GroupCommitPolicy(4, max_hold=1))
    rng = random.Random(0)
    assert system.invoke("T1", obj.name, inv("deposit", 7), rng).ok
    while not system.commit("T1"):
        system.tick()
    system.crash()
    assert system.status("T1") == "committed"
    outcome = system.invoke("T2", obj.name, inv("balance"), rng)
    assert outcome.ok
    assert outcome.operation.response == 7


def test_scheduler_counts_commit_stalls():
    """Done-but-unacknowledged transactions are progress, not deadlock:
    the run converges and the stall ticks are accounted."""
    adt = make_adt("bank")
    policy = GroupCommitPolicy(8, max_hold=3)
    obj = DurableObject(
        adt, adt.nfc_conflict(), "DU",
        log_factory=lambda: StableLog(policy=policy),
    )
    system = CrashableSystem([obj])
    scripts = [
        TransactionScript("T0", ((obj.name, inv("deposit", 1)),)),
    ]
    metrics = Scheduler(system, scripts, seed=0).run()
    assert metrics.committed == 1
    assert metrics.deadlocks == 0
    assert metrics.commit_stall_ticks > 0
    assert metrics.forces == 2  # prepare batch + commit batch, timer-flushed
    assert metrics.force_requests == 2


def test_batch_size_one_system_parity():
    """The regression gate: a batch-1 policy is byte-for-byte the
    unbatched engine — same records, forces, events and metrics."""
    def run(factory):
        adt = make_adt("bank")
        obj = DurableObject(
            adt, adt.nfc_conflict(), "DU", log_factory=factory
        )
        system = CrashableSystem([obj])
        rng = random.Random(5)
        scripts = [
            TransactionScript(
                "T%d" % t,
                tuple(
                    (adt.name, inv("deposit", rng.choice((1, 2, 3))))
                    for _ in range(2)
                ),
            )
            for t in range(6)
        ]
        return Scheduler(system, scripts, seed=5).run(), obj

    m_plain, o_plain = run(None)  # DurableObject's default StableLog
    m_gc1, o_gc1 = run(lambda: StableLog(policy=GroupCommitPolicy(1, 0)))
    assert o_plain.wal.log.records() == o_gc1.wal.log.records()
    assert o_plain.history().events == o_gc1.history().events
    assert m_gc1.forces == m_plain.forces
    assert m_gc1.force_requests == m_plain.forces  # one flush per request
    assert m_gc1.forced_records == m_plain.forced_records
    assert m_gc1.ticks == m_plain.ticks
    assert m_gc1.committed == m_plain.committed
    assert m_gc1.commit_stall_ticks == 0


def test_batched_run_coalesces_forces():
    """Concurrent commuting commits share flushes: fewer physical forces
    than force requests, and the metrics expose the amortization."""
    adt = make_adt("escrow")
    policy = GroupCommitPolicy(4, max_hold=3)
    obj = DurableObject(
        adt, adt.nfc_conflict(), "DU",
        log_factory=lambda: StableLog(policy=policy),
    )
    system = CrashableSystem([obj])
    rng = random.Random(2)
    scripts = [
        TransactionScript(
            "T%d" % t, ((adt.name, inv("credit", rng.choice((1, 2)))),)
        )
        for t in range(8)
    ]
    metrics = Scheduler(system, scripts, seed=2).run()
    assert metrics.committed == 8
    assert metrics.force_requests == 16  # prepare + commit per transaction
    assert metrics.forces < metrics.force_requests
    assert metrics.avg_batch_size > 1.0
    assert metrics.forces_per_commit < 2.0


# ---------------------------------------------------------------------------
# fault injection meets group commit: torn batched forces
# ---------------------------------------------------------------------------


def torn_batched_log(keep: int, batch: int = 3):
    """A faulty log whose first physical flush tears, keeping ``keep``
    records of the buffered tail."""
    plan = FaultPlan.crash_at(batch, "crash-during-force", keep=keep)
    counters = FaultCounters()
    log = FaultyStableLog(
        plan,
        counters=counters,
        policy=GroupCommitPolicy(batch_size=batch, max_hold=10),
    )
    tickets = []
    with pytest.raises(CrashPoint):
        for i in range(batch):
            log.append(record_maker("T%d" % i))
            tickets.append(log.request_force())  # batch fills on the last
    return log, counters, tickets


@pytest.mark.parametrize("keep", [0, 1, 2])
def test_torn_batched_force_loses_only_unflushed_suffix(keep):
    log, counters, tickets = torn_batched_log(keep)
    assert counters.torn_forces == 1  # one tear, however many riders
    # No ticket is satisfied: the flush never completed, so none of the
    # batched commits may be acknowledged.
    assert not any(log.flushed(t) for t in tickets)
    lost = log.crash()
    assert lost == 3 - keep  # only the suffix past the torn prefix dies
    assert [r.txn for r in log.records()] == ["T%d" % i for i in range(keep)]
    fates = dict((r.txn, fate) for r, fate in log.archive())
    for i in range(3):
        assert fates["T%d" % i] == ("durable" if i < keep else "lost")


def test_torn_batch_never_acknowledges_lost_commit():
    """System level: a tear mid-batch crashes the process before any
    rider is acknowledged; recovery resolves each strictly from the
    surviving records (commit-point-first, never retracted)."""
    adt = make_adt("escrow")
    counters = FaultCounters()
    # Interactions: prepare-batch flush is interaction 2 (two appends
    # first under DU); tear it keeping nothing.
    plan = FaultPlan.crash_at(2, "crash-during-force", keep=0)
    obj = DurableObject(
        adt,
        adt.nfc_conflict(),
        "DU",
        log_factory=lambda: FaultyStableLog(
            plan,
            counters=counters,
            policy=GroupCommitPolicy(batch_size=2, max_hold=10),
        ),
    )
    system = CrashableSystem([obj])
    rng = random.Random(0)
    assert system.invoke("T1", obj.name, inv("credit", 3), rng).ok
    assert system.invoke("T2", obj.name, inv("credit", 4), rng).ok
    assert not system.commit("T1")  # joins the held prepare batch
    with pytest.raises(CrashPoint):
        system.commit("T2")  # fills the batch; the flush tears
    assert counters.torn_forces == 1
    system.crash()
    # Neither rider was acknowledged, neither survives.
    assert system.status("T1") == "aborted"
    assert system.status("T2") == "aborted"
    assert not obj.wal.has_durable_commit("T1")
    assert not obj.wal.has_durable_commit("T2")


# ---------------------------------------------------------------------------
# FaultCounters.merge covers every field
# ---------------------------------------------------------------------------


def test_fault_counters_merge_every_field():
    """``merge`` must accumulate *every* declared counter — including
    any added after it was written (it introspects the dataclass)."""
    from dataclasses import fields

    a = FaultCounters()
    b = FaultCounters()
    for i, spec in enumerate(fields(FaultCounters), start=1):
        setattr(a, spec.name, i)
        setattr(b, spec.name, 10 * i)
    a.merge(b)
    for i, spec in enumerate(fields(FaultCounters), start=1):
        assert getattr(a, spec.name) == 11 * i, spec.name
    assert getattr(b, fields(FaultCounters)[0].name) == 10  # b untouched
