"""Tests for the optimistic (commit-time-validated) protocol."""

import random

import pytest

from repro.adts import BankAccount, SemiQueue, SetADT
from repro.core.atomicity import is_dynamic_atomic
from repro.core.events import inv
from repro.runtime.errors import InvalidTransactionState
from repro.runtime.optimistic import (
    OptimisticObject,
    OptimisticSystem,
    run_optimistic,
)
from repro.runtime.scheduler import TransactionScript


def make_system(adt=None):
    adt = adt or BankAccount("BA", opening=10)
    return adt, OptimisticSystem([OptimisticObject(adt, adt.nfc_conflict())])


class TestExecution:
    def test_never_blocks(self):
        ba, system = make_system()
        assert system.invoke("A", "BA", inv("balance")).ok
        assert system.invoke("B", "BA", inv("deposit", 1)).ok  # no blocking

    def test_private_views(self):
        ba, system = make_system(BankAccount("BA"))
        system.invoke("A", "BA", inv("deposit", 5))
        outcome = system.invoke("B", "BA", inv("balance"))
        assert outcome.operation == ba.balance(0)

    def test_pending_invocation_protocol(self):
        ba, system = make_system()
        obj = system.objects["BA"]
        obj._pending["A"] = inv("deposit", 1)
        with pytest.raises(InvalidTransactionState):
            obj.try_operation("A", inv("deposit", 2))


class TestValidation:
    def test_non_conflicting_both_commit(self):
        ba, system = make_system()
        system.invoke("A", "BA", inv("deposit", 1))
        system.invoke("B", "BA", inv("deposit", 2))
        assert system.commit("A")
        assert system.commit("B")  # deposits commute forward: validates

    def test_first_committer_wins(self):
        ba, system = make_system(BankAccount("BA", opening=2))
        system.invoke("A", "BA", inv("withdraw", 2))
        system.invoke("B", "BA", inv("withdraw", 2))
        assert system.commit("A")
        assert not system.commit("B")  # (w-ok, w-ok) ∈ NFC: validation fails
        assert system.status("B") == "aborted"

    def test_reader_invalidated_by_update(self):
        ba, system = make_system()
        system.invoke("A", "BA", inv("balance"))
        system.invoke("B", "BA", inv("deposit", 1))
        assert system.commit("B")
        assert not system.commit("A")  # stale read

    def test_commits_before_start_irrelevant(self):
        ba, system = make_system()
        system.invoke("B", "BA", inv("deposit", 1))
        assert system.commit("B")
        system.invoke("A", "BA", inv("balance"))  # starts after B committed
        assert system.commit("A")

    def test_validation_failures_counted(self):
        ba, system = make_system(BankAccount("BA", opening=2))
        system.invoke("A", "BA", inv("withdraw", 2))
        system.invoke("B", "BA", inv("withdraw", 2))
        system.commit("A")
        system.commit("B")
        assert system.objects["BA"].validation_failures == 1


class TestDynamicAtomicity:
    @pytest.mark.parametrize("seed", range(8))
    def test_histories_dynamic_atomic(self, seed):
        ba = BankAccount("BA", opening=5)
        system = OptimisticSystem([OptimisticObject(ba, ba.nfc_conflict())])
        rng = random.Random(seed)
        scripts = []
        for i in range(4):
            steps = []
            for _ in range(2):
                kind = rng.choice(["deposit", "withdraw", "balance"])
                if kind == "balance":
                    steps.append(("BA", inv("balance")))
                else:
                    steps.append(("BA", inv(kind, rng.choice([1, 2]))))
            scripts.append(TransactionScript("T%d" % i, tuple(steps)))
        metrics = run_optimistic(system, scripts, seed=seed)
        assert metrics.committed >= 1
        assert is_dynamic_atomic(system.history(), ba)

    @pytest.mark.parametrize("seed", range(4))
    def test_semiqueue_optimistic(self, seed):
        sq = SemiQueue("SQ", domain=("a", "b"))
        system = OptimisticSystem([OptimisticObject(sq, sq.nfc_conflict())])
        rng = random.Random(seed)
        scripts = [
            TransactionScript(
                "T%d" % i,
                tuple(
                    (
                        "SQ",
                        inv("enq", rng.choice(["a", "b"]))
                        if rng.random() < 0.6
                        else inv("deq"),
                    )
                    for _ in range(2)
                ),
            )
            for i in range(4)
        ]
        run_optimistic(system, scripts, seed=seed)
        assert is_dynamic_atomic(system.history(), sq)

    @pytest.mark.parametrize("seed", range(4))
    def test_under_constrained_validation_unsafe(self, seed):
        """Validating with NRBC (wrong for DU) admits anomalies."""
        ba = BankAccount("BA", opening=2)
        system = OptimisticSystem([OptimisticObject(ba, ba.nrbc_conflict())])
        system.invoke("B", "BA", inv("withdraw", 2))
        system.invoke("C", "BA", inv("withdraw", 2))
        assert system.commit("B")
        assert system.commit("C")  # (w-ok, w-ok) ∉ NRBC: validation passes!
        assert not is_dynamic_atomic(system.history(), ba)


class TestDriver:
    def test_all_scripts_finish(self):
        ba = BankAccount("BA", opening=50)
        system = OptimisticSystem([OptimisticObject(ba, ba.nfc_conflict())])
        scripts = [
            TransactionScript("T%d" % i, (("BA", inv("deposit", 1)),))
            for i in range(5)
        ]
        metrics = run_optimistic(system, scripts, seed=0)
        assert metrics.committed == 5
        assert metrics.aborted == 0

    def test_retries_after_validation_failure(self):
        ba = BankAccount("BA", opening=4)
        system = OptimisticSystem([OptimisticObject(ba, ba.nfc_conflict())])
        scripts = [
            TransactionScript("T%d" % i, (("BA", inv("withdraw", 2)),))
            for i in range(2)
        ]
        metrics = run_optimistic(system, scripts, seed=3)
        assert metrics.committed == 2  # retry succeeds (enough funds)
