"""Site-crash torture for the replicated runtime.

The campaign drives workloads while sites fail and recover at scheduled
ticks, then audits catch-up completeness, copy convergence, and dynamic
atomicity of the *merged* multi-site history — the global serialization
claim a recovered-but-stale copy would break.  The ``skip-catchup``
negative control plants exactly that bug and must be detected.
"""

import pytest

from repro.runtime.torture import (
    SiteCrash,
    TortureConfig,
    describe_site_schedule,
    plan_site_campaign,
    run_site_schedule,
    run_site_torture,
)
from repro.runtime.trace import TraceCollector


def _config(**overrides):
    base = dict(adt_kind="counter", recovery="DU", sites=2)
    base.update(overrides)
    return TortureConfig(
        base.pop("adt_kind"), base.pop("recovery"), **base
    )


# ---------------------------------------------------------------------------
# schedules and planning
# ---------------------------------------------------------------------------


def test_site_crash_describes_like_torture_schedules():
    assert SiteCrash(1, 10, 40).describe() == "site1@10-40"
    assert SiteCrash(0, 7).describe() == "site0@7-end"
    plan = describe_site_schedule([SiteCrash(0, 3, 9), SiteCrash(1, 5)])
    assert plan == "site0@3-9,site1@5-end"


def test_plan_site_campaign_rejects_single_site_configs():
    with pytest.raises(ValueError, match="sites >= 2"):
        plan_site_campaign([_config(sites=1)], schedules=4)


def test_plan_site_campaign_is_deterministic():
    configs = [_config(), _config(adt_kind="bank")]
    a = plan_site_campaign(configs, schedules=10, seed=5)
    b = plan_site_campaign(configs, schedules=10, seed=5)
    assert [(c.label(), s, r) for c, s, r in a] == [
        (c.label(), s, r) for c, s, r in b
    ]
    assert len(a) == 10
    # round-robin: both configs get schedules
    labels = {c.label() for c, _, _ in a}
    assert len(labels) == 2


# ---------------------------------------------------------------------------
# the invariants hold across the matrix
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("recovery", ["DU", "UIP"])
@pytest.mark.parametrize("adt_kind", ["counter", "bank"])
def test_site_crash_campaign_preserves_invariants(adt_kind, recovery):
    report = run_site_torture(
        [_config(adt_kind=adt_kind, recovery=recovery)],
        schedules=6,
        seed=9,
    )
    assert report.ok, "\n".join(v.format() for v in report.violations)
    assert report.schedules == 6
    assert report.committed > 0


def test_three_site_campaign_with_group_commit():
    report = run_site_torture(
        [_config(sites=3, group_commit=2, hold=3)],
        schedules=5,
        seed=2,
    )
    assert report.ok, "\n".join(v.format() for v in report.violations)


def test_crash_without_recovery_still_audits_clean():
    # the site stays down for the whole run; the post-run recovery and
    # catch-up poll must still converge the copies
    result = run_site_schedule(
        _config(), [SiteCrash(site=1, fail_tick=3)], seed=4
    )
    assert result.violations == []


def test_all_sites_down_window_aborts_cleanly():
    # both sites down at once: arrivals block with no holders and the
    # aging victim path aborts them; no invariant may break
    crashes = [SiteCrash(0, 4, 10), SiteCrash(1, 5, 11)]
    result = run_site_schedule(_config(), crashes, seed=1)
    assert result.violations == []


def test_site_schedule_emits_reconcilable_trace():
    trace = TraceCollector()
    result = run_site_schedule(
        _config(), [SiteCrash(site=1, fail_tick=3, recover_tick=9)],
        seed=0,
        trace=trace,
    )
    assert result.violations == []
    kinds = {e["kind"] for e in trace.events}
    assert "site-failure" in kinds
    assert "site-recovery" in kinds


# ---------------------------------------------------------------------------
# the negative control is detected
# ---------------------------------------------------------------------------


def test_skip_catchup_bug_is_detected():
    config = _config(bug="skip-catchup")
    hits = 0
    for seed in range(6):
        result = run_site_schedule(
            config, [SiteCrash(site=1, fail_tick=3, recover_tick=12)],
            seed=seed,
        )
        hits += bool(result.violations)
    assert hits > 0, "the planted catch-up bug was never detected"
