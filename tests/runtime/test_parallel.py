"""Tests for the parallel experiment execution engine.

Covers the three contracts of ``repro.runtime.parallel``:

* **determinism** — serial-vs-parallel equality over the compare matrix
  (workloads x workers), a group-commit run cell, and a torture
  campaign: the merged aggregates are exactly the serial ones;
* **robustness** — a crashed worker's cells are retried once on a fresh
  pool, and cells that keep killing their worker surface as failed
  cells instead of hanging the sweep;
* **trace sharding** — per-worker shards stitch back into a stream that
  ``repro trace-report --strict`` accepts, with one copy per cell.
"""

import json
import os

import pytest

from repro.cli import main
from repro.experiments.comparisons import compare, compare_parallel, comparison_case
from repro.runtime.parallel import (
    Cell,
    CellResult,
    ParallelRunner,
    execute_cell,
    register_executor,
    shard_path,
    stitch_trace_shards,
    trace_shard_paths,
)
from repro.runtime.torture import configs_for, plan_campaign, run_torture

WORKER_MATRIX = (1, 2, 4)


# ---------------------------------------------------------------------------
# serial-vs-parallel equality
# ---------------------------------------------------------------------------


class TestCompareEquality:
    @pytest.mark.parametrize("workload", ["hotspot", "semiqueue", "set"])
    def test_matrix_matches_serial(self, workload):
        adt_factory, workload_fn = comparison_case(
            workload, transactions=4, ops_per_txn=2
        )
        serial = compare(adt_factory, workload_fn, seeds=(0, 1, 2))
        for workers in WORKER_MATRIX:
            summaries, failed = compare_parallel(
                workload,
                seeds=(0, 1, 2),
                transactions=4,
                ops_per_txn=2,
                workers=workers,
            )
            assert not failed
            assert summaries == serial, "%s diverged at workers=%d" % (
                workload,
                workers,
            )

    def test_seed_offset_respected(self):
        summaries, failed = compare_parallel(
            "hotspot", seeds=(5, 6), transactions=4, ops_per_txn=2, workers=2
        )
        assert not failed
        adt_factory, workload_fn = comparison_case(
            "hotspot", transactions=4, ops_per_txn=2
        )
        assert summaries == compare(adt_factory, workload_fn, seeds=(5, 6))


class TestRunCellEquality:
    def test_group_commit_run_cell(self):
        """A 'run' cell (group commit on) matches in and out of the pool."""
        cell = Cell(
            index=0,
            kind="run",
            spec={
                "adt": "bank",
                "recovery": "DU",
                "transactions": 6,
                "ops": 3,
                "group_commit": 4,
                "hold": 2,
            },
            seed=3,
        )
        direct = execute_cell(cell)
        assert direct.forces > 0 and direct.committed > 0
        # Two cells so the pooled path actually engages the pool.
        cells = [cell, Cell(index=1, kind="run", spec=cell.spec, seed=4)]
        for workers in WORKER_MATRIX:
            results = ParallelRunner(workers).run(cells)
            assert [r.ok for r in results] == [True, True]
            assert results[0].value == direct
            assert results[1].value == execute_cell(cells[1])


class TestTortureEquality:
    def test_campaign_matches_serial(self):
        configs = configs_for(["bank"], ("DU", "UIP"), group_commit=2)
        serial = run_torture(configs, schedules=12, seed=3)
        assert serial.ok
        for workers in WORKER_MATRIX[1:]:
            report = run_torture(
                configs, schedules=12, seed=3, workers=workers
            )
            assert report.format() == serial.format()
            assert report.counters == serial.counters

    def test_plan_campaign_is_the_serial_prefix(self):
        """The cell decomposition draws exactly the serial RNG stream."""
        configs = configs_for(["bank"], ("DU",))
        first = plan_campaign(configs, schedules=8, seed=9)
        again = plan_campaign(configs, schedules=8, seed=9)
        assert [(p.describe(), s) for _, p, s in first] == [
            (p.describe(), s) for _, p, s in again
        ]

    def test_shared_trace_collector_rejected(self):
        configs = configs_for(["bank"], ("DU",))
        with pytest.raises(ValueError, match="trace_out"):
            run_torture(
                configs, schedules=2, seed=0, workers=2, trace=object()
            )


# ---------------------------------------------------------------------------
# worker-death robustness
# ---------------------------------------------------------------------------


def _flaky_executor(cell, trace):
    """Kill the worker the first time each cell runs; succeed after."""
    marker = os.path.join(cell.spec["dir"], "cell-%d" % cell.index)
    if not os.path.exists(marker):
        with open(marker, "w") as fp:
            fp.write("crashed")
        os._exit(1)
    return cell.index * 10


def _doomed_executor(cell, trace):
    os._exit(1)


class TestWorkerDeath:
    def test_crashed_cells_retry_on_a_fresh_worker(self, tmp_path):
        register_executor("test-flaky", _flaky_executor)
        spec = {"dir": str(tmp_path)}
        cells = [Cell(i, "test-flaky", spec) for i in range(4)]
        # A broken pool can take unstarted chunks down with it, and each
        # wave only guarantees one cell past its first-run crash — give
        # the retry budget one wave per cell plus the clean final wave.
        runner = ParallelRunner(2, chunk_size=1, retries=4)
        results = runner.run(cells)
        assert [r.ok for r in results] == [True] * 4
        assert [r.value for r in results] == [0, 10, 20, 30]
        # Every cell really did kill its first worker.
        assert all(
            os.path.exists(os.path.join(str(tmp_path), "cell-%d" % i))
            for i in range(4)
        )

    def test_cell_that_keeps_killing_workers_is_abandoned(self):
        register_executor("test-doomed", _doomed_executor)
        runner = ParallelRunner(2, chunk_size=1)
        # Force the pool path: two cells, both doomed.
        results = runner.run(
            [Cell(0, "test-doomed"), Cell(1, "test-doomed")]
        )
        assert [r.ok for r in results] == [False, False]
        assert all("worker process died" in r.error for r in results)
        assert ParallelRunner.failed(results) == results

    def test_python_exception_is_a_failed_cell_not_a_dead_worker(self):
        def boom(cell, trace):
            raise RuntimeError("cell %d exploded" % cell.index)

        register_executor("test-boom", boom)
        results = ParallelRunner(1).run(
            [Cell(0, "test-boom"), Cell(1, "test-boom")]
        )
        assert [r.ok for r in results] == [False, False]
        assert "RuntimeError: cell 0 exploded" in results[0].error

    def test_unknown_kind(self):
        with pytest.raises(KeyError, match="no-such-kind"):
            execute_cell(Cell(0, "no-such-kind"))

    def test_duplicate_indexes_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            ParallelRunner(1).run([Cell(0, "run"), Cell(0, "run")])

    def test_bad_knobs_rejected(self):
        with pytest.raises(ValueError):
            ParallelRunner(0)
        with pytest.raises(ValueError):
            ParallelRunner(2, chunk_size=0)
        with pytest.raises(ValueError):
            ParallelRunner(2, retries=-1)


# ---------------------------------------------------------------------------
# trace sharding and stitching
# ---------------------------------------------------------------------------


class TestTraceSharding:
    def test_shard_path_naming(self):
        assert shard_path("TRACE_x.jsonl", 3) == "TRACE_x.w3.jsonl"
        assert shard_path("plain", 0) == "plain.w0.jsonl"

    def test_stitch_round_trip_through_trace_report(self, tmp_path):
        trace_file = str(tmp_path / "TRACE_par.jsonl")
        configs = configs_for(["bank"], ("DU",))
        report = run_torture(
            configs, schedules=6, seed=1, workers=2, trace_out=trace_file
        )
        assert report.ok
        shards = trace_shard_paths(trace_file)
        assert shards, "no worker shards were written"
        assert all(".w" in p for p in shards)
        assert os.path.exists(trace_file)
        # The stitched stream is one copy per cell, in cell order, and
        # passes full schema validation + reconciliation.
        cells = [
            json.loads(line)["cell"] for line in open(trace_file)
        ]
        assert cells == sorted(cells)
        assert set(cells) == set(range(6))
        assert main(["trace-report", trace_file, "--strict"]) == 0

    def test_stitch_skips_torn_lines_and_duplicate_cells(self, tmp_path):
        base = str(tmp_path / "T.jsonl")
        with open(shard_path(base, 0), "w") as fp:
            fp.write(json.dumps({"kind": "a", "cell": 0}) + "\n")
            fp.write('{"kind": "torn", "cel')  # mid-write worker death
        with open(shard_path(base, 1), "w") as fp:
            fp.write(json.dumps({"kind": "b", "cell": 0}) + "\n")
            fp.write(json.dumps({"kind": "c", "cell": 1}) + "\n")
        count = stitch_trace_shards(base, winners={0: 1, 1: 1})
        events = [json.loads(line) for line in open(base)]
        assert count == 2
        assert [e["kind"] for e in events] == ["b", "c"]
        # Without winners, the lowest worker id holds cell 0.
        stitch_trace_shards(base)
        events = [json.loads(line) for line in open(base)]
        assert [e["kind"] for e in events] == ["a", "c"]

    def test_stale_shards_removed_before_a_run(self, tmp_path):
        trace_file = str(tmp_path / "TRACE_s.jsonl")
        stale = shard_path(trace_file, 7)
        with open(stale, "w") as fp:
            fp.write(json.dumps({"kind": "stale", "cell": 99}) + "\n")
        configs = configs_for(["bank"], ("DU",))
        run_torture(
            configs, schedules=2, seed=0, workers=2, trace_out=trace_file
        )
        assert not os.path.exists(stale)
        cells = {json.loads(line)["cell"] for line in open(trace_file)}
        assert 99 not in cells
