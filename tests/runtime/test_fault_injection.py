"""Fault-injection tests: the crash-point matrix and the fault primitives.

The heart of this module is the *matrix* test: every built-in ADT, under
both recovery methods (and both UndoRedoLog restart policies where the
ADT supports logical undo), crashed at **every** stable-log interaction
index the workload reaches, with the three recovery invariants audited
after every restart.  The remaining tests pin down the fault plumbing
itself: plan determinism, torn-force prefix semantics, IO-error
retry/backoff accounting, record fates, and the negative control.
"""

from __future__ import annotations

import random

import pytest

from repro.adts.registry import ADT_REGISTRY, make_adt
from repro.runtime.faults import (
    CrashPoint,
    FaultEvent,
    FaultPlan,
    FaultyStableLog,
    RetryPolicy,
    enumerate_crash_plans,
)
from repro.runtime.metrics import FaultCounters
from repro.runtime.torture import (
    TortureConfig,
    configs_for,
    profile_horizon,
    run_schedule,
)
from repro.runtime.wal import CommitRecord, OperationRecord, StableLog, UndoRedoLog

SMALL = dict(transactions=3, ops_per_txn=2)


def small_configs():
    return configs_for(sorted(ADT_REGISTRY), **SMALL)


def config_id(config: TortureConfig) -> str:
    return config.label()


# ---------------------------------------------------------------------------
# the crash-point matrix
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("config", small_configs(), ids=config_id)
def test_crash_at_every_append_index(config):
    """Crashing at every log interaction never violates an invariant."""
    horizon = profile_horizon(config)
    for plan in enumerate_crash_plans(horizon):
        result = run_schedule(config, plan, seed=0)
        assert not result.violations, "\n".join(
            v.format() for v in result.violations
        )
        assert result.crashes >= 1  # the injected crash plus the final audit


@pytest.mark.parametrize(
    "config",
    configs_for(["bank", "fifo"], **SMALL),
    ids=config_id,
)
def test_torn_force_prefixes(config):
    """Torn forces (every surviving-prefix length) never violate."""
    horizon = profile_horizon(config)
    for at in range(horizon):
        for keep in (0, 1, 2):
            plan = FaultPlan.crash_at(at, "crash-during-force", keep=keep)
            result = run_schedule(config, plan, seed=0)
            assert not result.violations, "\n".join(
                v.format() for v in result.violations
            )


@pytest.mark.parametrize(
    "config",
    configs_for(["counter", "escrow"], checkpoint_every=5, **SMALL),
    ids=config_id,
)
def test_crashes_with_checkpoints(config):
    """Crash placement stays sound when checkpoints truncate the log."""
    horizon = profile_horizon(config)
    kinds = (
        "crash-before-append",
        "crash-after-append",
        "crash-before-truncate",
    )
    for plan in enumerate_crash_plans(horizon, kinds):
        result = run_schedule(config, plan, seed=0)
        assert not result.violations, "\n".join(
            v.format() for v in result.violations
        )


# ---------------------------------------------------------------------------
# differential: both UndoRedoLog restart policies agree
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "kind",
    sorted(k for k in ADT_REGISTRY if make_adt(k).supports_logical_undo),
)
def test_restart_policies_agree_at_every_crash_point(kind):
    """replay-winners and redo-undo reconstruct identical states.

    Drives the workload fault-free once to capture the full log record
    sequence, then — for every prefix of it (every prefix is a reachable
    durable log: torn forces persist arbitrary prefixes of the buffered
    tail) — restarts both policies from the same records and compares
    the restored macro-states.
    """
    config = TortureConfig(kind, "UIP", **SMALL)
    counters = FaultCounters()
    plan = FaultPlan()
    from repro.runtime.torture import build_system, workload_for
    from repro.runtime.scheduler import Scheduler

    system, adt = build_system(config, plan, counters)
    scripts = workload_for(config, adt, random.Random(0))
    Scheduler(system, scripts, seed=0, max_restarts=8).run()
    (obj,) = system.objects.values()
    records = obj.wal.log.records()
    assert records, "workload produced no log traffic"
    for cut in range(len(records) + 1):
        prefix = list(records[:cut])
        states = {}
        for policy in ("replay-winners", "redo-undo"):
            log = StableLog()
            log._records = list(prefix)
            log._next_lsn = (prefix[-1].lsn + 1) if prefix else 0
            states[policy] = UndoRedoLog(
                make_adt(kind), restart_policy=policy, log=log
            ).restart()
        assert states["replay-winners"] == states["redo-undo"], (
            "policies diverge at prefix %d/%d" % (cut, len(records))
        )


# ---------------------------------------------------------------------------
# fault primitives
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_rejects_duplicate_indexes(self):
        with pytest.raises(ValueError):
            FaultPlan([FaultEvent(3), FaultEvent(3, "crash-before-append")])

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultEvent(0, "power-surge")

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError):
            FaultEvent(-1)

    def test_fires_once(self):
        plan = FaultPlan.crash_at(1)
        assert plan.draw("append") is None
        assert plan.draw("append") is not None
        assert plan.draw("append") is None  # already fired; clock moved on
        assert len(plan.fired) == 1

    def test_sample_is_deterministic(self):
        a = FaultPlan.sample(random.Random(9), 40, max_faults=3)
        b = FaultPlan.sample(random.Random(9), 40, max_faults=3)
        assert a.events == b.events
        assert a.seed == b.seed

    def test_enumerate_covers_horizon(self):
        plans = enumerate_crash_plans(5)
        assert len(plans) == 10  # 5 indexes x 2 kinds
        ats = {p.events[0].at for p in plans}
        assert ats == set(range(5))


class TestFaultyStableLog:
    @staticmethod
    def _rec(txn="T"):
        return lambda lsn: CommitRecord(lsn, txn=txn)

    def test_append_is_volatile_until_force(self):
        log = FaultyStableLog(FaultPlan())
        log.append(self._rec())
        assert log.durable_tail_length() == 0
        assert log.crash() == 1
        assert log.records() == ()

    def test_force_makes_durable(self):
        log = FaultyStableLog(FaultPlan())
        log.append(self._rec())
        log.force()
        assert log.durable_tail_length() == 1
        assert log.crash() == 0
        assert len(log.records()) == 1

    def test_crash_before_append_loses_record(self):
        log = FaultyStableLog(FaultPlan.crash_at(0, "crash-before-append"))
        with pytest.raises(CrashPoint):
            log.append(self._rec())
        assert len(log.records()) == 0

    def test_crash_after_append_keeps_volatile_record(self):
        log = FaultyStableLog(FaultPlan.crash_at(0, "crash-after-append"))
        with pytest.raises(CrashPoint):
            log.append(self._rec())
        assert len(log.records()) == 1
        log.crash()
        assert len(log.records()) == 0  # it was in the volatile tail

    def test_torn_force_keeps_prefix(self):
        plan = FaultPlan.crash_at(3, "crash-during-force", keep=2)
        log = FaultyStableLog(plan)
        for i in range(3):
            log.append(self._rec("T%d" % i))
        with pytest.raises(CrashPoint):
            log.force()
        log.crash()
        survivors = [r.txn for r in log.records()]
        assert survivors == ["T0", "T1"]  # a strict prefix, never a subset
        assert log.counters.torn_forces == 1

    def test_io_error_burst_absorbed_with_backoff(self):
        plan = FaultPlan(
            [FaultEvent(0, "io-error", burst=2)],
            retry=RetryPolicy(max_retries=3, backoff_base=1),
        )
        counters = FaultCounters()
        log = FaultyStableLog(plan, counters=counters)
        log.append(self._rec())  # burst absorbed; append succeeds
        assert counters.io_errors == 2
        assert counters.io_retries == 2
        assert counters.backoff_ticks == 1 + 2  # exponential: 1, then 2
        assert counters.crashes == 0

    def test_io_error_burst_exhausting_retries_escalates(self):
        plan = FaultPlan(
            [FaultEvent(0, "io-error", burst=5)],
            retry=RetryPolicy(max_retries=2),
        )
        log = FaultyStableLog(plan)
        with pytest.raises(CrashPoint) as exc:
            log.append(self._rec())
        assert exc.value.kind == "io-error-exhausted"

    def test_archive_tracks_fates_across_truncation(self):
        log = FaultyStableLog(FaultPlan())
        log.append(lambda lsn: OperationRecord(lsn, txn="T"))
        log.append(self._rec("T"))
        log.force()
        log.append(self._rec("U"))  # left volatile
        log.crash()
        fates = {r.txn: fate for r, fate in log.archive()}
        assert fates == {"T": "durable", "U": "lost"}

    def test_recovery_append_is_durable_and_not_injectable(self):
        log = FaultyStableLog(FaultPlan.crash_at(0))
        log.recovery_append(self._rec())  # plan index 0 must not fire
        assert log.durable_tail_length() == 1
        assert not log.plan.fired

    def test_skip_commit_force_never_flushes(self):
        log = FaultyStableLog(FaultPlan(), skip_commit_force=True)
        log.append(self._rec())
        log.force()
        assert log.forces == 1  # acknowledged...
        assert log.durable_tail_length() == 0  # ...but nothing durable
        assert log.crash() == 1


# ---------------------------------------------------------------------------
# the negative control
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("recovery", ["DU", "UIP"])
def test_negative_control_is_detected(recovery):
    """A planted skip-commit-force bug must be flagged by the audit."""
    config = TortureConfig(
        "bank", recovery, bug="skip-commit-force", **SMALL
    )
    flagged = []
    for plan in enumerate_crash_plans(profile_horizon(config))[:10]:
        flagged.extend(run_schedule(config, plan, seed=0).violations)
    assert flagged, "the audit failed to detect the planted bug"
    kinds = {v.invariant for v in flagged}
    assert "lost-commit" in kinds or "restart-state" in kinds
