"""EXP-C4: the concrete recovery managers realize the abstract views.

Invariant: after any prefix of events, the manager's macro-state for an
active transaction equals ``spec.states_after(View(H, txn))`` where
``View`` is the corresponding abstract view (UIP or DU).  Checked by
replaying randomized abstract-automaton traces into the managers,
event by event, across ADTs and undo strategies.
"""

import random

import pytest

from repro.adts import BankAccount, Counter, SemiQueue, SetADT
from repro.core.events import inv
from repro.core.history import History
from repro.core.object_automaton import TransactionProgram, generate_trace
from repro.core.views import DU, UIP
from repro.runtime.recovery import DeferredUpdateManager, UpdateInPlaceManager


def replay_and_check(adt, view, manager_factory, history: History):
    """Feed a history into a manager, checking the macro invariant."""
    manager = manager_factory()
    prefix = []
    for event in history:
        prefix.append(event)
        h = History(prefix, validate=False)
        if event.is_response:
            operation = h.operations_of(event.txn)[-1]
            manager.on_execute(event.txn, operation)
        elif event.is_commit:
            manager.on_commit(event.txn)
        elif event.is_abort:
            manager.on_abort(event.txn)
        for txn in sorted(h.active() | {"PROBE"}):
            expected = adt.states_after(view(h, txn))
            assert manager.macro(txn) == expected, (
                "divergence for %s after %d events (%s)"
                % (txn, len(prefix), manager.name)
            )


def bank_programs(rng):
    programs = []
    for i in range(3):
        steps = []
        for _ in range(2):
            kind = rng.choice(["deposit", "withdraw", "balance"])
            steps.append(
                inv(kind, rng.choice([1, 2])) if kind != "balance" else inv("balance")
            )
        programs.append(TransactionProgram("T%d" % i, tuple(steps)))
    return programs


def semiqueue_programs(rng):
    programs = []
    for i in range(3):
        steps = [
            rng.choice([inv("enq", rng.choice(["a", "b"])), inv("deq")])
            for _ in range(2)
        ]
        programs.append(TransactionProgram("T%d" % i, tuple(steps)))
    return programs


def set_programs(rng):
    programs = []
    for i in range(3):
        steps = [
            inv(rng.choice(["insert", "delete", "member"]), rng.choice(["a", "b"]))
            for _ in range(2)
        ]
        programs.append(TransactionProgram("T%d" % i, tuple(steps)))
    return programs


CASES = [
    pytest.param(
        lambda: BankAccount(domain=(1, 2)),
        bank_programs,
        id="bank",
    ),
    pytest.param(
        lambda: SemiQueue(domain=("a", "b")),
        semiqueue_programs,
        id="semiqueue",
    ),
    pytest.param(
        lambda: SetADT(domain=("a", "b")),
        set_programs,
        id="set",
    ),
]


@pytest.mark.parametrize("adt_factory, program_factory", CASES)
@pytest.mark.parametrize("seed", range(6))
def test_uip_manager_realizes_uip_view(adt_factory, program_factory, seed):
    adt = adt_factory()
    rng = random.Random(seed)
    trace = generate_trace(
        adt,
        UIP,
        adt.nrbc_conflict(),
        program_factory(rng),
        rng,
        abort_probability=0.3,
    )
    strategies = ["replay"]
    if adt.supports_logical_undo:
        strategies.append("logical")
    for strategy in strategies:
        replay_and_check(
            adt,
            UIP,
            lambda s=strategy: UpdateInPlaceManager(adt, strategy=s),
            trace,
        )


@pytest.mark.parametrize("adt_factory, program_factory", CASES)
@pytest.mark.parametrize("seed", range(6))
def test_du_manager_realizes_du_view(adt_factory, program_factory, seed):
    adt = adt_factory()
    rng = random.Random(seed + 100)
    trace = generate_trace(
        adt,
        DU,
        adt.nfc_conflict(),
        program_factory(rng),
        rng,
        abort_probability=0.3,
    )
    replay_and_check(adt, DU, lambda: DeferredUpdateManager(adt), trace)


def test_strategies_agree_with_each_other():
    """Logical and replay undo land in identical states on shared traces."""
    ba = BankAccount(domain=(1, 2))
    rng = random.Random(7)
    trace = generate_trace(
        ba, UIP, ba.nrbc_conflict(), bank_programs(rng), rng, abort_probability=0.4
    )
    logical = UpdateInPlaceManager(ba, strategy="logical")
    replay = UpdateInPlaceManager(ba, strategy="replay")
    prefix = []
    for event in trace:
        prefix.append(event)
        h = History(prefix, validate=False)
        for manager in (logical, replay):
            if event.is_response:
                manager.on_execute(event.txn, h.operations_of(event.txn)[-1])
            elif event.is_commit:
                manager.on_commit(event.txn)
            elif event.is_abort:
                manager.on_abort(event.txn)
        assert logical.current_macro == replay.current_macro
