"""Tests for the multiversion snapshot read path (read-only transactions).

The load-bearing properties:

* read-only transactions acquire **zero locks** — no entry in any
  :class:`LockManager`, ever (``lifetime_holders`` is the audit surface);
* snapshot reads observe the committed state as of the transaction's
  start CSN, unmoved by later commits;
* version chains only ever hold **durably committed** states: every
  installed version's transaction has a durable commit record, and a
  crash can never surface a volatile-tail commit to a reader;
* whole-system crashes kill every active reader; shard crashes kill
  only the readers that actually read from the crashed shard;
* mixed RO/RW runs still pass the dynamic-atomicity audit (readers
  appear in no object history) and their traces reconcile.
"""

import random

import pytest

from repro.adts.registry import make_adt
from repro.core.atomicity import is_dynamic_atomic
from repro.core.events import inv
from repro.runtime.durability import CrashableSystem, DurableObject
from repro.runtime.errors import InvalidTransactionState
from repro.runtime.metrics import RunMetrics
from repro.runtime.scheduler import Scheduler, TransactionScript
from repro.runtime.sharding import ShardedSystem, shard_of
from repro.runtime.system import ManagedObject, TransactionSystem
from repro.runtime.torture import TortureConfig, configs_for, run_torture
from repro.runtime.trace import (
    TraceCollector,
    reconcile,
    validate_event,
)
from repro.runtime.wal import GroupCommitPolicy, StableLog
from repro.runtime.workloads import (
    hotspot_banking,
    readonly_snapshot_workload,
)


def counter_system():
    adt = make_adt("counter")
    obj = ManagedObject(adt, adt.nfc_conflict(), "DU")
    return TransactionSystem([obj]), adt, obj


def commit_increment(system, adt, txn, amount=1):
    outcome = system.invoke(txn, adt.name, inv("increment", amount))
    assert outcome.status == "ok"
    assert system.commit(txn)


# ---------------------------------------------------------------------------
# version chains
# ---------------------------------------------------------------------------


class TestVersionChain:
    def test_chain_starts_at_anchor_and_installs_in_commit_order(self):
        system, adt, obj = counter_system()
        assert obj.versions == ((0, None, adt.initial_macro_state()),)
        system.begin_readonly("PIN")  # hold the chain open
        commit_increment(system, adt, "T1")
        commit_increment(system, adt, "T2")
        csns = [csn for csn, _txn, _macro in obj.versions]
        txns = [txn for _csn, txn, _macro in obj.versions]
        assert csns == sorted(csns)
        assert "T1" in txns and "T2" in txns

    def test_install_rejects_non_monotone_csn(self):
        system, adt, obj = counter_system()
        commit_increment(system, adt, "T1")
        tip = obj.versions[-1][0]
        with pytest.raises(ValueError):
            obj.install_version(tip - 1, "bogus")

    def test_version_at_picks_newest_at_or_below(self):
        system, adt, obj = counter_system()
        # Hold a reader open at CSN 0 so nothing is pruned.
        system.begin_readonly("RO")
        commit_increment(system, adt, "T1")
        commit_increment(system, adt, "T2")
        assert obj.version_at(0) == adt.initial_macro_state()
        assert obj.version_at(1) == obj.versions[1][2]
        # A CSN past the tip resolves to the tip.
        assert obj.version_at(99) == obj.versions[-1][2]

    def test_prune_keeps_watermark_version_and_raises_past_it(self):
        system, adt, obj = counter_system()
        system.begin_readonly("RO")
        for t in range(4):
            commit_increment(system, adt, "T%d" % t)
        assert len(obj.versions) == 5
        obj.prune_versions(3)
        # The newest version at or below the watermark survives.
        assert obj.version_at(3) is not None
        with pytest.raises(InvalidTransactionState):
            obj.version_at(1)

    def test_chains_prune_to_tip_with_no_active_readers(self):
        system, adt, obj = counter_system()
        for t in range(4):
            commit_increment(system, adt, "T%d" % t)
        # No reader ever started: only the newest version is retained.
        assert len(obj.versions) == 1


# ---------------------------------------------------------------------------
# snapshot semantics
# ---------------------------------------------------------------------------


class TestSnapshotReads:
    def test_reads_pin_to_start_state_despite_later_commits(self):
        system, adt, obj = counter_system()
        commit_increment(system, adt, "T1")
        first = system.snapshot_read("RO", adt.name, inv("read"))
        assert first.status == "ok"
        commit_increment(system, adt, "T2")
        commit_increment(system, adt, "T3")
        second = system.snapshot_read("RO", adt.name, inv("read"))
        assert second.operation == first.operation
        # A fresh reader does observe the later commits.
        fresh = system.snapshot_read("RO2", adt.name, inv("read"))
        assert fresh.operation != first.operation

    def test_observations_match_the_snapshot_version(self):
        system, adt, obj = counter_system()
        commit_increment(system, adt, "T1")
        system.snapshot_read("RO", adt.name, inv("read"))
        commit_increment(system, adt, "T2")
        system.snapshot_read("RO", adt.name, inv("read"))
        snap = system.readonly_snapshot("RO")
        for obj_name, operation in system.readonly_observations("RO"):
            assert operation == system.object(obj_name).read_at(
                snap, operation.invocation
            )
        system.finish_readonly("RO")
        assert system.status("RO") == "committed"

    def test_readonly_cannot_mix_with_update_path(self):
        system, adt, _obj = counter_system()
        system.invoke("T1", adt.name, inv("increment", 1))
        with pytest.raises(InvalidTransactionState):
            system.begin_readonly("T1")

    def test_readonly_abort_drops_the_snapshot(self):
        system, adt, _obj = counter_system()
        system.snapshot_read("RO", adt.name, inv("read"))
        system.abort("RO")
        assert system.status("RO") == "aborted"


# ---------------------------------------------------------------------------
# zero locks
# ---------------------------------------------------------------------------


class TestZeroLocks:
    def _mixed_run(self, seed=3):
        rng = random.Random(seed)
        adt = make_adt("bank")
        scripts = hotspot_banking(
            rng, obj=adt.name, transactions=6, ops_per_txn=3
        )
        readers = readonly_snapshot_workload(
            adt, rng, objs=[adt.name], readers=4, reads_per_txn=3
        )
        system = TransactionSystem(
            [ManagedObject(adt, adt.nfc_conflict(), "DU")]
        )
        metrics = Scheduler(
            system, scripts + readers, seed=seed, label="ro-mixed"
        ).run()
        return system, adt, metrics, readers

    def test_readers_never_touch_any_lock_manager(self):
        system, adt, metrics, readers = self._mixed_run()
        reader_names = {s.name for s in readers}
        assert metrics.ro_committed == len(readers)
        assert metrics.ro_snapshot_reads == sum(
            len(s.steps) for s in readers
        )
        for obj in system.objects.values():
            held_ever = obj.locks.lifetime_holders()
            assert not any(
                name.split("~")[0] in reader_names for name in held_ever
            )
            assert held_ever  # the writers did lock

    def test_readers_stay_out_of_the_audited_history(self):
        system, adt, metrics, readers = self._mixed_run()
        history = system.history()
        reader_names = {s.name for s in readers}
        assert not reader_names & {
            e.txn for e in history.events
        }
        assert is_dynamic_atomic(history, {adt.name: adt})

    def test_locked_baseline_does_lock(self):
        rng = random.Random(3)
        adt = make_adt("bank")
        readers = readonly_snapshot_workload(
            adt, rng, objs=[adt.name], readers=2, reads_per_txn=2,
            snapshot=False,
        )
        system = TransactionSystem(
            [ManagedObject(adt, adt.nfc_conflict(), "DU")]
        )
        metrics = Scheduler(system, readers, seed=3, label="ro-locked").run()
        assert metrics.ro_committed == 0
        assert metrics.committed == 2
        held_ever = system.object(adt.name).locks.lifetime_holders()
        assert held_ever


# ---------------------------------------------------------------------------
# crashes: durable visibility
# ---------------------------------------------------------------------------


def durable_counter_system(policy=None):
    adt = make_adt("counter")
    factory = (
        (lambda: StableLog(policy=policy)) if policy is not None else StableLog
    )
    obj = DurableObject(adt, adt.nfc_conflict(), "DU", log_factory=factory)
    return CrashableSystem([obj]), adt, obj


class TestCrashVisibility:
    def test_crash_kills_active_readers(self):
        system, adt, _obj = durable_counter_system()
        commit_increment(system, adt, "T1")
        system.snapshot_read("RO", adt.name, inv("read"))
        victims = system.crash()
        assert "RO" in victims
        assert system.status("RO") == "aborted"

    def test_installed_versions_all_have_durable_commit_records(self):
        system, adt, obj = durable_counter_system()
        system.begin_readonly("PIN")  # hold the chain open
        for t in range(3):
            commit_increment(system, adt, "T%d" % t)
        for _csn, txn, _macro in obj.versions:
            if txn is not None:
                assert obj.wal.commit_lsn(txn) is not None

    def test_volatile_tail_commit_never_reaches_readers(self):
        # Group commit holds the commit record in an unflushed batch: the
        # "commit" is volatile.  A crash must resolve the transaction as
        # killed, and no reader — before or after the crash — may ever
        # observe its effect.
        system, adt, obj = durable_counter_system(
            policy=GroupCommitPolicy(8, 100)
        )
        assert system.invoke("T1", adt.name, inv("increment", 1)).status == "ok"
        for _ in range(300):  # T1's batch flushes when the hold expires
            if system.commit("T1"):
                break
            system.tick()
        assert system.status("T1") == "committed"
        before = system.snapshot_read("RO1", adt.name, inv("read"))
        outcome = system.invoke("T2", adt.name, inv("increment", 1))
        assert outcome.status == "ok"
        assert not system.commit("T2")  # commit record held, not durable
        assert system.status("T2") == "active"
        tip_before = obj.versions[-1]
        victims = system.crash()
        assert "T2" in victims
        assert system.status("T2") == "aborted"
        # The chain tip is unchanged: T2 was never installed.
        assert obj.versions[-1] == tip_before
        assert "T2" not in [txn for _c, txn, _m in obj.versions]
        after = system.snapshot_read("RO2", adt.name, inv("read"))
        assert after.operation == before.operation

    def test_crash_resolved_commit_is_installed_for_readers(self):
        # The dual case: the commit record IS durable but the crash
        # interrupts completion.  Resolution must finish the commit and
        # install the version, so post-crash readers observe it.
        system, adt, obj = durable_counter_system()
        commit_increment(system, adt, "T1")
        tip = obj.versions[-1]
        assert tip[1] == "T1"
        system.crash()
        observed = system.snapshot_read("RO", adt.name, inv("read"))
        assert observed.status == "ok"
        assert observed.operation == obj.read_at(
            obj.versions[-1][0], inv("read")
        )


# ---------------------------------------------------------------------------
# shard crashes
# ---------------------------------------------------------------------------


def sharded_counter_system():
    # A4 hashes to shard 0, A0 to shard 1 (CRC-32 placement is stable).
    names = ["A4", "A0"]
    assert [shard_of(n, 2) for n in names] == [0, 1]
    objs = []
    for name in names:
        adt = make_adt("counter", name)
        objs.append(DurableObject(adt, adt.nfc_conflict(), "DU"))
    return ShardedSystem(objs, shards=2), names


class TestShardCrashVisibility:
    def test_shard_crash_kills_only_its_readers(self):
        system, (on0, on1) = sharded_counter_system()
        for name in (on0, on1):
            assert system.invoke("T1", name, inv("increment", 1)).status == "ok"
        assert system.commit("T1")
        system.snapshot_read("RO0", on0, inv("read"))
        system.snapshot_read("RO1", on1, inv("read"))
        victims = system.crash_shard(0)
        assert "RO0" in victims
        assert "RO1" not in victims
        assert system.status("RO0") == "aborted"
        # The surviving reader keeps reading its untouched snapshot and
        # commits cleanly: chains are never retracted.
        again = system.snapshot_read("RO1", on1, inv("read"))
        assert again.status == "ok"
        system.finish_readonly("RO1")
        assert system.status("RO1") == "committed"

    def test_cross_shard_snapshot_is_cut_at_one_csn(self):
        system, (on0, on1) = sharded_counter_system()
        for txn, amount in (("T1", 1), ("T2", 2)):
            for name in (on0, on1):
                assert (
                    system.invoke(txn, name, inv("increment", amount)).status
                    == "ok"
                )
            assert system.commit(txn)
        # Both objects were stamped under the same CSN per commit.
        csns0 = [c for c, t, _m in system.object(on0).versions if t]
        csns1 = [c for c, t, _m in system.object(on1).versions if t]
        assert csns0 == csns1
        # A reader started now sees *both* objects at the same cut.
        snap_reads = {
            name: system.snapshot_read("RO", name, inv("read")).operation
            for name in (on0, on1)
        }
        snap = system.readonly_snapshot("RO")
        for name, operation in snap_reads.items():
            assert operation == system.object(name).read_at(
                snap, inv("read")
            )


# ---------------------------------------------------------------------------
# trace reconciliation with readers
# ---------------------------------------------------------------------------


class TestTracedMixedRuns:
    def test_mixed_run_reconciles_and_emits_ro_kinds(self):
        rng = random.Random(5)
        adt = make_adt("bank")
        scripts = hotspot_banking(
            rng, obj=adt.name, transactions=5, ops_per_txn=2
        )
        readers = readonly_snapshot_workload(
            adt, rng, objs=[adt.name], readers=3, reads_per_txn=2
        )
        system = TransactionSystem(
            [ManagedObject(adt, adt.nfc_conflict(), "DU")]
        )
        trace = TraceCollector()
        metrics = Scheduler(
            system, scripts + readers, seed=5, label="ro-traced", trace=trace
        ).run()
        for event in trace.events:
            assert validate_event(event) is None
        results = reconcile(trace.events)
        assert results and all(r.ok for r in results)
        assert results[0].reported == metrics.counters()
        kinds = {e["kind"] for e in trace.events}
        assert "snapshot-read" in kinds
        assert "ro-commit" in kinds
        assert metrics.ro_committed == 3


# ---------------------------------------------------------------------------
# torture matrix with readers riding along
# ---------------------------------------------------------------------------


class TestTortureWithReaders:
    def test_label_carries_the_read_mix(self):
        assert TortureConfig("bank", read_mix=0.5).label().endswith("/ro0.5")
        assert "/ro" not in TortureConfig("bank").label()

    def test_crash_schedules_hold_invariants_with_readers(self):
        configs = configs_for(
            ["bank", "counter"],
            ("DU", "UIP"),
            transactions=4,
            ops_per_txn=2,
            read_mix=0.5,
        )
        report = run_torture(configs, schedules=len(configs) * 2, seed=1)
        assert report.ok, report.format()
        assert report.crashes > 0
        assert report.committed > 0

    def test_observerless_adts_just_get_no_readers(self):
        from repro.runtime.torture import workload_for

        config = TortureConfig("fifo", transactions=4, read_mix=0.5)
        adt = make_adt("fifo")
        scripts = workload_for(config, adt, random.Random(0))
        assert not any(s.read_only for s in scripts)

    def test_reader_scripts_ride_along_for_observer_adts(self):
        from repro.runtime.torture import workload_for

        config = TortureConfig("bank", transactions=4, read_mix=0.5)
        adt = make_adt("bank")
        scripts = workload_for(config, adt, random.Random(0))
        assert sum(1 for s in scripts if s.read_only) == 2
