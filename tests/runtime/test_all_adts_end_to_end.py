"""End-to-end sweep: every ADT × both recovery methods × seeds.

Random transaction scripts are drawn from each ADT's own invocation
alphabet and run through the concrete scheduler under the matching
conflict relation; every resulting history must be dynamic atomic.
This is the library's broadest safety net: any ADT whose analytic
conflict relation under-approximates its true NFC/NRBC would be caught
here as a concrete serializability anomaly.
"""

import random

import pytest

from repro.adts import (
    BankAccount,
    Counter,
    EscrowAccount,
    FifoQueue,
    KVStore,
    PriorityQueue,
    Register,
    SemiQueue,
    SetADT,
    Stack,
)
from repro.core.fast_atomicity import fast_is_dynamic_atomic
from repro.runtime import ManagedObject, TransactionSystem, run_scripts
from repro.runtime.scheduler import TransactionScript

FACTORIES = [
    pytest.param(lambda: BankAccount("X", domain=(1, 2), opening=5), id="bank"),
    pytest.param(lambda: Counter("X", domain=(1, 2)), id="counter"),
    pytest.param(lambda: EscrowAccount("X", domain=(1, 2), opening=3), id="escrow"),
    pytest.param(lambda: FifoQueue("X", domain=("a", "b")), id="fifo"),
    pytest.param(lambda: KVStore("X", keys=("k1", "k2"), values=("u", "v")), id="kv"),
    pytest.param(lambda: PriorityQueue("X", domain=(1, 2)), id="pqueue"),
    pytest.param(lambda: Register("X", domain=("u", "v"), initial="u"), id="register"),
    pytest.param(lambda: SemiQueue("X", domain=("a", "b")), id="semiqueue"),
    pytest.param(lambda: SetADT("X", domain=("a", "b")), id="set"),
    pytest.param(lambda: Stack("X", domain=("a", "b")), id="stack"),
]


def random_scripts(adt, rng: random.Random, n_txns: int = 4, n_ops: int = 2):
    invocations = adt.invocation_alphabet()
    return [
        TransactionScript(
            "T%d" % i,
            tuple(("X", rng.choice(invocations)) for _ in range(n_ops)),
        )
        for i in range(n_txns)
    ]


@pytest.mark.parametrize("factory", FACTORIES)
@pytest.mark.parametrize("seed", range(3))
def test_uip_nrbc_end_to_end(factory, seed):
    adt = factory()
    system = TransactionSystem([ManagedObject(adt, adt.nrbc_conflict(), "UIP")])
    scripts = random_scripts(adt, random.Random(seed))
    metrics = run_scripts(system, scripts, seed=seed)
    assert metrics.committed >= 1
    assert fast_is_dynamic_atomic(system.history(), adt)


@pytest.mark.parametrize("factory", FACTORIES)
@pytest.mark.parametrize("seed", range(3))
def test_du_nfc_end_to_end(factory, seed):
    adt = factory()
    system = TransactionSystem([ManagedObject(adt, adt.nfc_conflict(), "DU")])
    scripts = random_scripts(adt, random.Random(seed + 77))
    metrics = run_scripts(system, scripts, seed=seed)
    assert metrics.committed >= 1
    assert fast_is_dynamic_atomic(system.history(), adt)


@pytest.mark.parametrize("factory", FACTORIES)
def test_rw_baseline_end_to_end(factory):
    """Strict 2PL is safe with either recovery method on every ADT."""
    from repro.runtime import read_write_conflict

    for recovery in ("UIP", "DU"):
        adt = factory()
        system = TransactionSystem(
            [ManagedObject(adt, read_write_conflict(adt), recovery)]
        )
        scripts = random_scripts(adt, random.Random(5))
        run_scripts(system, scripts, seed=5)
        assert fast_is_dynamic_atomic(system.history(), adt)