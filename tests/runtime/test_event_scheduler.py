"""The event-driven scheduler is byte-identical to the polling loop.

The wake calendar (``repro.runtime.scheduler``) jumps provably-dead
ticks; these tests pin the claim that the jump is unobservable — same
histories, same RunMetrics, same JSONL trace streams, same RNG draws —
across the axes the runtime supports: crash schedules, group-commit
holds, shards, sites, read mixes and open-loop arrivals.  Alongside the
differential matrix: boundary pins for ``backoff_until`` (a restarted
transaction is runnable *at* its wake tick, never one off), a lockstep
per-tick trace comparison on a crash-heavy case, the hold-timer
``next_deadline``/``advance`` contract, and the non-convergence
diagnostic snapshot.
"""

import random

import pytest

from repro.adts import BankAccount
from repro.core.events import inv
from repro.runtime import ManagedObject, TransactionSystem
from repro.runtime.openloop import OpenLoopConfig, drive
from repro.runtime.scheduler import (
    POLLING_ENV,
    Scheduler,
    TransactionScript,
    periodic_wake,
    schedule_wake,
)
from repro.runtime.torture import (
    SiteCrash,
    TortureConfig,
    plan_campaign,
    run_schedule,
    run_site_schedule,
)
from repro.runtime.trace import TraceCollector, reconstruct_counters
from repro.runtime.wal import GroupCommitPolicy, StableLog

# ---------------------------------------------------------------------------
# differential matrix: event-driven vs polling, axis by axis
# ---------------------------------------------------------------------------


def _torture_cells(config, schedules, seed):
    rows = []
    trace = TraceCollector()
    for cfg, plan, run_seed in plan_campaign(
        [config], schedules=schedules, seed=seed
    ):
        r = run_schedule(cfg, plan, seed=run_seed, trace=trace)
        rows.append(
            (r.schedule, r.committed, r.crashes, sorted(r.violations))
        )
    return rows, [dict(e) for e in trace.events]


def _site_cells(config, seed):
    crashes = [SiteCrash(1, 6, 30), SiteCrash(0, 45, 0)]
    trace = TraceCollector()
    r = run_site_schedule(config, crashes, seed=seed, trace=trace)
    return (
        (r.schedule, r.committed, r.crashes, sorted(r.violations)),
        [dict(e) for e in trace.events],
    )


def _drive_cell(config, seed):
    trace = TraceCollector()
    report = drive(config, seed=seed, trace=trace)
    return (
        report.metrics.counters(),
        report.latencies,
        [dict(e) for e in trace.events],
    )


DRIVE_CASES = {
    # sparse arrivals: the elision-heavy case (most ticks are dead)
    "sparse": OpenLoopConfig(
        adt_kind="counter",
        objects=12,
        transactions=30,
        arrival_rate=0.02,
        zipf_s=0.9,
    ),
    # read-mix on the snapshot path
    "read_mix": OpenLoopConfig(
        adt_kind="counter",
        objects=12,
        transactions=36,
        arrival_rate=0.2,
        zipf_s=1.1,
        read_mix=0.4,
    ),
    # sharded runtime, cross-shard traffic
    "shards": OpenLoopConfig(
        adt_kind="counter",
        objects=16,
        shards=2,
        transactions=40,
        arrival_rate=0.5,
        zipf_s=0.8,
        cross_shard=0.2,
        group_commit=2,
        hold=3,
    ),
    # replicated sites through a crash/recovery window, held batches
    "sites": OpenLoopConfig(
        adt_kind="counter",
        objects=10,
        transactions=30,
        arrival_rate=0.1,
        sites=2,
        site_crashes=((1, 40, 200),),
        group_commit=2,
        hold=4,
    ),
}


class TestDifferentialMatrix:
    def _both_modes(self, monkeypatch, fn):
        monkeypatch.delenv(POLLING_ENV, raising=False)
        event = fn()
        monkeypatch.setenv(POLLING_ENV, "1")
        polling = fn()
        monkeypatch.delenv(POLLING_ENV, raising=False)
        return event, polling

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize(
        "config",
        [
            TortureConfig("counter", "DU", group_commit=2, hold=4),
            TortureConfig(
                "bank", "UIP", transactions=3, ops_per_txn=4, hold=2
            ),
        ],
        ids=["counter-du-gc2", "bank-uip"],
    )
    def test_torture_crash_schedules(self, monkeypatch, config, seed):
        event, polling = self._both_modes(
            monkeypatch, lambda: _torture_cells(config, 8, seed)
        )
        assert event == polling

    @pytest.mark.parametrize("seed", [0, 3])
    def test_site_crash_torture(self, monkeypatch, seed):
        config = TortureConfig(
            "counter", "DU", sites=2, group_commit=2, hold=3
        )
        event, polling = self._both_modes(
            monkeypatch, lambda: _site_cells(config, seed)
        )
        assert event == polling

    @pytest.mark.parametrize("case", sorted(DRIVE_CASES))
    @pytest.mark.parametrize("seed", [0, 7])
    def test_open_loop_drives(self, monkeypatch, case, seed):
        event, polling = self._both_modes(
            monkeypatch, lambda: _drive_cell(DRIVE_CASES[case], seed)
        )
        assert event == polling
        if case == "sparse":
            counters = event[0]
            assert counters["dead_ticks_elided"] > 0
            assert counters["calendar_wakeups"] > 0

    def test_sparse_drive_reconciles(self, monkeypatch):
        monkeypatch.delenv(POLLING_ENV, raising=False)
        counters, _, events = _drive_cell(DRIVE_CASES["sparse"], 5)
        rebuilt = reconstruct_counters(
            [e for e in events if e["kind"] != "drive-start"]
        )
        for name in ("dead_ticks_elided", "calendar_wakeups", "ticks"):
            assert rebuilt[name] == counters[name]


# ---------------------------------------------------------------------------
# lockstep per-tick comparison on a crash-heavy schedule
# ---------------------------------------------------------------------------


class TestLockstepTraces:
    def test_crash_heavy_traces_match_tick_by_tick(self, monkeypatch):
        """Compare the two modes' trace streams tick group by tick
        group, so any divergence is localized to its first tick rather
        than drowned in a whole-stream diff."""
        config = TortureConfig(
            "bank", "DU", transactions=4, ops_per_txn=3,
            group_commit=2, hold=3,
        )

        def run():
            rows, events = _torture_cells(config, 10, seed=1)
            return events

        monkeypatch.delenv(POLLING_ENV, raising=False)
        event_stream = run()
        monkeypatch.setenv(POLLING_ENV, "1")
        polling_stream = run()
        assert any(e["kind"] == "crash" for e in event_stream)

        def by_tick(stream):
            groups = []
            for e in stream:
                if groups and groups[-1][0] == e["tick"]:
                    groups[-1][1].append(e)
                else:
                    groups.append((e["tick"], [e]))
            return groups

        event_groups = by_tick(event_stream)
        polling_groups = by_tick(polling_stream)
        for i, (egroup, pgroup) in enumerate(
            zip(event_groups, polling_groups)
        ):
            assert egroup == pgroup, (
                "first divergence at tick group %d (tick %s): %r != %r"
                % (i, egroup[0], egroup, pgroup)
            )
        assert len(event_groups) == len(polling_groups)


# ---------------------------------------------------------------------------
# backoff boundary: runnable exactly AT backoff_until
# ---------------------------------------------------------------------------


def _one_shot_system():
    ba = BankAccount("BA")
    return TransactionSystem([ManagedObject(ba, ba.nrbc_conflict(), "UIP")])


def _arrival_scheduler(arrival, **kwargs):
    scripts = [TransactionScript("T", (("BA", inv("deposit", 1)),))]
    return Scheduler(
        _one_shot_system(),
        scripts,
        seed=0,
        trace=TraceCollector(),
        arrivals={"T": arrival},
        **kwargs,
    )


class TestBackoffBoundary:
    @pytest.mark.parametrize("event_driven", [False, "auto"])
    def test_arrival_runs_exactly_at_backoff_until(self, event_driven):
        """An entry whose ``backoff_until`` is B acts at tick B — not
        B+1 (off-by-one in the calendar) and not B-1 (early wake)."""
        scheduler = _arrival_scheduler(10, event_driven=event_driven)
        scheduler.run()
        ticks = {
            e["kind"]: e["tick"] for e in scheduler.trace.events
        }
        assert ticks["op-ok"] == 10
        assert scheduler.metrics.dead_ticks_elided == 9

    def test_wake_is_backoff_until_not_one_off(self):
        scheduler = _arrival_scheduler(10)
        entry = scheduler._active[0]
        # one before the window opens: not runnable, wake names B exactly
        assert not scheduler._any_runnable(9, scheduler._active)
        assert scheduler._next_wake(8) == 10
        assert scheduler._next_wake(9) == 10
        # at the boundary: runnable, and the wake moves to the floor
        assert scheduler._any_runnable(10, scheduler._active)
        assert scheduler._next_wake(10) == 11
        # one after: still runnable
        assert scheduler._any_runnable(11, scheduler._active)
        # a window already in the past behaves like no window at all
        entry.backoff_until = 0
        assert scheduler._any_runnable(1, scheduler._active)
        assert scheduler._next_wake(0) == 1

    def test_calendar_wake_event_names_the_boundary(self):
        scheduler = _arrival_scheduler(10)
        scheduler.run()
        wakes = [
            e for e in scheduler.trace.events if e["kind"] == "calendar-wake"
        ]
        assert wakes and wakes[0]["wake"] == 10
        assert wakes[0]["elided"] == 9
        assert wakes[0]["tick"] == 0


# ---------------------------------------------------------------------------
# mode resolution, escape hatch, wake helpers
# ---------------------------------------------------------------------------


class TestModeResolution:
    def test_invalid_event_driven_value_rejected(self):
        with pytest.raises(ValueError, match="event_driven"):
            _arrival_scheduler(0, event_driven="yes")

    def test_event_driven_true_requires_capable_hook(self):
        scheduler = _arrival_scheduler(0, event_driven=True, on_tick=len)
        with pytest.raises(ValueError, match="next_wake"):
            scheduler.run()

    def test_escape_hatch_beats_event_driven_true(self, monkeypatch):
        monkeypatch.setenv(POLLING_ENV, "1")
        scheduler = _arrival_scheduler(4, event_driven=True)
        metrics = scheduler.run()
        assert metrics.committed == 1
        # polling walked the dead ticks, but the accounting still ran
        assert metrics.dead_ticks_elided == 3

    def test_uncapable_hook_falls_back_to_polling(self):
        hits = []

        def hook(tick):
            hits.append(tick)
            return False

        scheduler = _arrival_scheduler(6, on_tick=hook)
        metrics = scheduler.run()
        assert metrics.committed == 1
        # no next_wake on the hook: every tick must still reach it
        assert hits == list(range(1, metrics.ticks + 1))
        assert metrics.dead_ticks_elided == 0

    def test_periodic_wake(self):
        wake = periodic_wake(10)
        assert wake(0) == 10
        assert wake(9) == 10
        assert wake(10) == 20
        assert periodic_wake(0)(5) is None

    def test_schedule_wake(self):
        wake = schedule_wake([30, 8, 0, 8])
        assert wake(0) == 8
        assert wake(8) == 30
        assert wake(30) is None


# ---------------------------------------------------------------------------
# hold-timer deadlines (wal / system plumbing)
# ---------------------------------------------------------------------------


class TestHoldTimerDeadline:
    def make_log(self, batch=4, hold=3):
        return StableLog(
            policy=GroupCommitPolicy(batch_size=batch, max_hold=hold)
        )

    def test_idle_log_has_no_deadline(self):
        assert self.make_log().next_deadline() is None

    def test_deadline_counts_down_with_ticks(self):
        log = self.make_log(hold=3)
        log.request_force()
        assert log.next_deadline() == 4  # fires on the 4th tick (hold > 3)
        log.tick()
        assert log.next_deadline() == 3
        log.tick()
        log.tick()
        assert log.next_deadline() == 1
        assert log.forces == 0
        log.tick()  # hold expired: flush
        assert log.forces == 1
        assert log.next_deadline() is None

    def test_advance_equals_that_many_ticks(self):
        ticked, jumped = self.make_log(), self.make_log()
        ticked.request_force()
        jumped.request_force()
        for _ in range(3):
            ticked.tick()
        jumped.advance(3)
        assert jumped.next_deadline() == ticked.next_deadline() == 1
        assert jumped.forces == ticked.forces == 0

    def test_advance_refuses_to_jump_the_deadline(self):
        log = self.make_log(hold=3)
        log.request_force()
        with pytest.raises(ValueError, match="deadline"):
            log.advance(4)
        log.advance(0)  # no-op
        idle = self.make_log()
        idle.advance(100)  # no pending batch: nothing to time out

    def test_system_deadline_is_min_over_objects(self):
        from repro.runtime.durability import DurableObject

        objs = [
            DurableObject(
                acct,
                acct.nrbc_conflict(),
                "DU",
                log_factory=lambda h=h: StableLog(
                    policy=GroupCommitPolicy(batch_size=8, max_hold=h)
                ),
            )
            for acct, h in ((BankAccount("A"), 5), (BankAccount("B"), 2))
        ]
        system = TransactionSystem(objs)
        assert system.next_deadline() is None
        for obj, txn in zip(objs, ("T1", "T2")):
            obj.wal.log.request_force()
        assert system.next_deadline() == 3  # min(6, 3)
        system.advance_ticks(2)
        assert system.next_deadline() == 1


# ---------------------------------------------------------------------------
# non-convergence diagnostics
# ---------------------------------------------------------------------------


class TestNonConvergenceDiagnostics:
    @pytest.mark.parametrize("event_driven", [False, "auto"])
    def test_report_includes_live_snapshot(self, event_driven):
        scheduler = _arrival_scheduler(
            50, max_ticks=10, event_driven=event_driven
        )
        with pytest.raises(RuntimeError) as excinfo:
            scheduler.run()
        message = str(excinfo.value)
        # legacy first line preserved for grep/match compatibility
        assert message.startswith(
            "scheduler did not converge within 10 ticks"
        )
        assert "live transactions (1):" in message
        assert "backoff_until=50" in message
        assert "step=0/1" in message

    def test_report_includes_waits_for_edges(self):
        scheduler = _arrival_scheduler(0, max_ticks=5)
        scheduler._waits.wait("T", frozenset({"U"}))
        message = scheduler._nonconvergence_report()
        assert "waits-for edges (1):" in message
        assert "T -> U" in message


# ---------------------------------------------------------------------------
# retire-on-transition bookkeeping (the cached live list)
# ---------------------------------------------------------------------------


class TestRetireBookkeeping:
    def test_all_entries_retired_after_run(self):
        ba = BankAccount("BA")
        system = TransactionSystem(
            [ManagedObject(ba, ba.nrbc_conflict(), "UIP")]
        )
        scripts = [
            TransactionScript(
                "T%d" % i, (("BA", inv("deposit", 1)),)
            )
            for i in range(5)
        ]
        scheduler = Scheduler(system, scripts, seed=2)
        scheduler.run()
        assert scheduler._active == []
        assert all(t.retired for t in scheduler._live)
        # the full entry list survives compaction for crash bookkeeping
        assert len(scheduler._live) == 5

    def test_random_matrix_smoke(self, monkeypatch):
        """A randomized mini-fuzz across workload shapes: both modes,
        same counters and histories, on freshly drawn scripts."""
        rng = random.Random(99)
        for _ in range(6):
            n = rng.randint(2, 5)
            scripts = [
                TransactionScript(
                    "T%d" % i,
                    tuple(
                        ("BA", inv("deposit", rng.randint(1, 3)))
                        for _ in range(rng.randint(1, 3))
                    ),
                )
                for i in range(n)
            ]
            arrivals = {
                "T%d" % i: rng.choice([0, 0, rng.randint(1, 60)])
                for i in range(n)
            }
            seed = rng.randint(0, 1000)

            def cell():
                ba = BankAccount("BA")
                system = TransactionSystem(
                    [ManagedObject(ba, ba.nrbc_conflict(), "UIP")]
                )
                s = Scheduler(
                    system, scripts, seed=seed, arrivals=arrivals
                )
                s.run()
                return (
                    s.metrics.counters(),
                    [repr(e) for e in system.history()],
                )

            monkeypatch.delenv(POLLING_ENV, raising=False)
            event = cell()
            monkeypatch.setenv(POLLING_ENV, "1")
            assert cell() == event
