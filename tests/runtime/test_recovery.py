"""Unit tests for the concrete recovery managers."""

import pytest

from repro.adts import BankAccount, SemiQueue, SetADT
from repro.runtime.recovery import (
    DeferredUpdateManager,
    UpdateInPlaceManager,
    make_recovery_manager,
)


@pytest.fixture
def ba():
    return BankAccount()


class TestFactory:
    def test_uip(self, ba):
        assert isinstance(make_recovery_manager(ba, "UIP"), UpdateInPlaceManager)

    def test_du(self, ba):
        assert isinstance(make_recovery_manager(ba, "du"), DeferredUpdateManager)

    def test_unknown(self, ba):
        with pytest.raises(ValueError):
            make_recovery_manager(ba, "WAL")

    def test_auto_strategy_prefers_logical(self, ba):
        manager = UpdateInPlaceManager(ba)
        assert manager.strategy == "logical"

    def test_auto_strategy_falls_back_to_replay(self):
        s = SetADT()
        manager = UpdateInPlaceManager(s)
        assert manager.strategy == "replay"

    def test_logical_rejected_without_support(self):
        with pytest.raises(ValueError):
            UpdateInPlaceManager(SetADT(), strategy="logical")

    def test_bad_strategy(self, ba):
        with pytest.raises(ValueError):
            UpdateInPlaceManager(ba, strategy="magic")


class TestUpdateInPlace:
    def test_execute_updates_current(self, ba):
        m = UpdateInPlaceManager(ba)
        m.on_execute("A", ba.deposit(5))
        assert m.current_macro == frozenset({5})

    def test_everyone_sees_current(self, ba):
        m = UpdateInPlaceManager(ba)
        m.on_execute("A", ba.deposit(5))
        assert m.macro("B") == frozenset({5})

    def test_commit_is_free(self, ba):
        m = UpdateInPlaceManager(ba)
        m.on_execute("A", ba.deposit(5))
        m.on_commit("A")
        assert m.current_macro == frozenset({5})

    def test_logical_abort_undoes_in_reverse(self, ba):
        m = UpdateInPlaceManager(ba, strategy="logical")
        m.on_execute("A", ba.deposit(5))
        m.on_execute("A", ba.withdraw_ok(2))
        m.on_abort("A")
        assert m.current_macro == frozenset({0})

    def test_logical_abort_with_interleaved_survivor(self, ba):
        m = UpdateInPlaceManager(ba, strategy="logical")
        m.on_execute("A", ba.deposit(5))
        m.on_execute("B", ba.deposit(3))
        m.on_abort("A")
        assert m.current_macro == frozenset({3})

    def test_replay_abort(self, ba):
        m = UpdateInPlaceManager(ba, strategy="replay")
        m.on_execute("A", ba.deposit(5))
        m.on_execute("B", ba.deposit(3))
        m.on_abort("A")
        assert m.current_macro == frozenset({3})

    def test_replay_preserves_execution_order(self):
        s = SetADT(domain=("a", "b"))
        m = UpdateInPlaceManager(s, strategy="replay")
        m.on_execute("A", s.insert("a"))
        m.on_execute("B", s.insert("b"))
        m.on_execute("B", s.delete("a"))
        m.on_abort("A")
        assert m.current_macro == frozenset({frozenset({"b"})})

    def test_abort_unknown_txn_noop(self, ba):
        m = UpdateInPlaceManager(ba)
        m.on_abort("ghost")
        assert m.current_macro == frozenset({0})

    def test_enabled_responses_from_current(self, ba):
        m = UpdateInPlaceManager(ba)
        m.on_execute("A", ba.deposit(2))
        assert m.enabled_responses("B", ba.withdraw_ok(1).invocation) == {"ok"}

    def test_nondeterministic_logical_undo(self):
        sq = SemiQueue(domain=("a", "b"))
        m = UpdateInPlaceManager(sq, strategy="logical")
        m.on_execute("A", sq.enq("a"))
        m.on_execute("B", sq.enq("b"))
        m.on_execute("A", sq.deq("b"))
        m.on_abort("A")
        assert m.current_macro == frozenset({("b",)})


class TestDeferredUpdate:
    def test_private_workspace_isolation(self, ba):
        m = DeferredUpdateManager(ba)
        m.on_execute("A", ba.deposit(5))
        assert m.macro("A") == frozenset({5})
        assert m.macro("B") == frozenset({0})  # invisible to B

    def test_commit_publishes(self, ba):
        m = DeferredUpdateManager(ba)
        m.on_execute("A", ba.deposit(5))
        m.on_commit("A")
        assert m.base_macro == frozenset({5})
        assert m.macro("B") == frozenset({5})

    def test_abort_discards_intentions(self, ba):
        m = DeferredUpdateManager(ba)
        m.on_execute("A", ba.deposit(5))
        m.on_abort("A")
        assert m.macro("A") == frozenset({0})
        assert m.base_macro == frozenset({0})

    def test_commit_order_matters(self, ba):
        m = DeferredUpdateManager(ba)
        m.on_execute("A", ba.deposit(2))
        m.on_execute("B", ba.withdraw_no(1))  # legal in B's private view (0 < 1)
        m.on_commit("B")
        m.on_commit("A")
        assert m.base_macro == frozenset({2})

    def test_intentions_of(self, ba):
        m = DeferredUpdateManager(ba)
        m.on_execute("A", ba.deposit(5))
        m.on_execute("A", ba.withdraw_ok(2))
        assert m.intentions_of("A") == (ba.deposit(5), ba.withdraw_ok(2))

    def test_poisoned_view_enables_nothing(self, ba):
        """Two private withdrawals of the whole balance: after B commits,
        C's intentions no longer replay against the base — the abstract
        semantics leaves C with an empty macro and no enabled responses."""
        m = DeferredUpdateManager(ba)
        m.on_execute("A", ba.deposit(2))
        m.on_commit("A")
        m.on_execute("B", ba.withdraw_ok(2))
        m.on_execute("C", ba.withdraw_ok(2))
        m.on_commit("B")
        assert m.macro("C") == frozenset()
        assert m.enabled_responses("C", ba.balance(0).invocation) == frozenset()

    def test_cache_invalidation_on_commit(self, ba):
        m = DeferredUpdateManager(ba)
        m.on_execute("A", ba.deposit(5))
        assert m.macro("B") == frozenset({0})  # prime B's cache
        m.on_commit("A")
        assert m.macro("B") == frozenset({5})  # cache invalidated
