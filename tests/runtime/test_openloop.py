"""Tests for the open-loop traffic driver (:mod:`repro.runtime.openloop`)."""

import math
import random

import pytest

from repro.runtime.openloop import (
    DriveReport,
    OpenLoopConfig,
    ZipfChooser,
    arrival_ticks,
    drive,
    home_shard,
    open_loop_scripts,
    zipf_weights,
)
from repro.runtime.sharding import shard_of
from repro.runtime.trace import TraceCollector

# ---------------------------------------------------------------------------
# configuration
# ---------------------------------------------------------------------------


def test_config_validates_knobs():
    for bad in (
        dict(objects=0),
        dict(shards=0),
        dict(transactions=0),
        dict(ops_per_txn=0),
        dict(arrival_rate=0.0),
        dict(process="steady"),
        dict(burst_factor=0.5),
        dict(zipf_s=-1.0),
        dict(cross_shard=1.5),
        dict(read_mix=-0.1),
        dict(read_mix=1.5),
        dict(ro_mode="martian"),
    ):
        with pytest.raises(ValueError):
            OpenLoopConfig(**bad)


def test_label_carries_read_mix_and_baseline_mode():
    assert "/ro" not in OpenLoopConfig().label()
    assert OpenLoopConfig(read_mix=0.3).label().endswith("/ro0.3")
    assert OpenLoopConfig(read_mix=0.3, ro_mode="locked").label().endswith(
        "/ro0.3-locked"
    )


def test_object_names_are_stable_and_distinct():
    names = OpenLoopConfig(objects=12).object_names()
    assert len(names) == 12
    assert len(set(names)) == 12
    assert names == OpenLoopConfig(objects=12).object_names()


# ---------------------------------------------------------------------------
# zipfian hot keys
# ---------------------------------------------------------------------------


def test_zipf_weights_normalize_and_rank():
    weights = zipf_weights(10, 1.1)
    assert math.isclose(sum(weights), 1.0)
    assert weights == sorted(weights, reverse=True)
    # s=0 degenerates to uniform
    assert all(math.isclose(w, 0.1) for w in zipf_weights(10, 0.0))


def test_zipf_chooser_rejects_empty_rank_space():
    # Regression: n=0 used to die with an IndexError inside bisect.
    with pytest.raises(ValueError, match="at least one rank"):
        ZipfChooser(0, 1.1)
    with pytest.raises(ValueError, match="at least one rank"):
        ZipfChooser(-3, 1.0)


def test_zipf_chooser_degenerate_single_rank():
    chooser = ZipfChooser(1, 1.1)
    rng = random.Random(0)
    assert all(chooser.pick(rng) == 0 for _ in range(50))


def test_zipf_chooser_s_zero_is_uniform():
    chooser = ZipfChooser(4, 0.0)
    rng = random.Random(0)
    picks = [chooser.pick(rng) for _ in range(4000)]
    counts = [picks.count(k) for k in range(4)]
    assert all(800 < c < 1200 for c in counts)


def test_zipf_chooser_is_skewed_and_deterministic():
    chooser = ZipfChooser(16, 1.1)
    rng = random.Random(0)
    picks = [chooser.pick(rng) for _ in range(2000)]
    assert all(0 <= p < 16 for p in picks)
    # rank 0 is the hot key: it must dominate the tail ranks
    assert picks.count(0) > 3 * picks.count(8)
    rng2 = random.Random(0)
    assert picks == [chooser.pick(rng2) for _ in range(2000)]


# ---------------------------------------------------------------------------
# arrivals
# ---------------------------------------------------------------------------


def test_poisson_arrivals_are_monotone_and_near_rate():
    config = OpenLoopConfig(transactions=500, arrival_rate=2.0)
    ticks = arrival_ticks(config, random.Random(1))
    assert len(ticks) == 500
    assert all(t >= 1 for t in ticks)
    assert ticks == sorted(ticks)
    # mean offered rate within 25% of the target over 500 arrivals
    rate = len(ticks) / ticks[-1]
    assert 1.5 < rate < 2.5


def test_bursty_arrivals_cluster_in_on_windows():
    config = OpenLoopConfig(
        transactions=400,
        arrival_rate=1.0,
        process="bursty",
        burst_factor=4.0,
        burst_period=64,
    )
    ticks = arrival_ticks(config, random.Random(1))
    assert ticks == sorted(ticks)
    # every arrival lands inside the on-window (first period/factor
    # ticks of each period)
    on = config.burst_period / config.burst_factor
    assert all((t - 1) % config.burst_period < on + 1 for t in ticks)
    # the long-run mean rate is preserved (within 30%)
    rate = len(ticks) / ticks[-1]
    assert 0.7 < rate < 1.3


def test_arrivals_are_deterministic_per_seed():
    config = OpenLoopConfig(transactions=50, arrival_rate=3.0)
    a = arrival_ticks(config, random.Random(9))
    b = arrival_ticks(config, random.Random(9))
    c = arrival_ticks(config, random.Random(10))
    assert a == b
    assert a != c


# ---------------------------------------------------------------------------
# script generation
# ---------------------------------------------------------------------------


def test_open_loop_scripts_are_deterministic():
    config = OpenLoopConfig(objects=8, shards=2, transactions=30)
    a = open_loop_scripts(config, random.Random(4))
    b = open_loop_scripts(config, random.Random(4))
    assert [(s.name, s.steps, t) for s, t in a] == [
        (s.name, s.steps, t) for s, t in b
    ]


def test_single_shard_scripts_stay_on_their_home_shard():
    config = OpenLoopConfig(objects=16, shards=4, transactions=40)
    for script, _ in open_loop_scripts(config, random.Random(2)):
        home = home_shard(script, config.shards)
        for obj, _inv in script.steps:
            assert shard_of(obj, config.shards) == home


def test_cross_shard_scripts_touch_two_shards():
    config = OpenLoopConfig(
        objects=16, shards=4, transactions=60, cross_shard=1.0
    )
    crossing = 0
    for script, _ in open_loop_scripts(config, random.Random(2)):
        shards = {shard_of(obj, config.shards) for obj, _ in script.steps}
        assert len(shards) <= 2
        crossing += len(shards) == 2
    assert crossing > 30  # cross_shard=1.0: nearly all transactions cross


# ---------------------------------------------------------------------------
# driving
# ---------------------------------------------------------------------------


def test_drive_commits_the_offered_load_and_measures_latency():
    config = OpenLoopConfig(
        adt_kind="counter", objects=8, shards=2, transactions=24
    )
    trace = TraceCollector()
    report = drive(config, seed=5, trace=trace)
    assert isinstance(report, DriveReport)
    assert report.ok
    assert report.offered == 24
    assert report.metrics.committed == 24
    assert len(report.latencies) == 24
    assert report.latencies == sorted(report.latencies)
    summary = report.latency_summary()
    assert summary["p50"] <= summary["p95"] <= summary["p99"] <= summary["max"]
    kinds = {e["kind"] for e in trace.events}
    assert "drive-start" in kinds and "drive-end" in kinds
    assert len(report.per_shard) == 2
    assert sum(row["committed"] for row in report.per_shard) == 24
    assert "open-loop drive" in report.format()


def test_drive_latency_counts_from_arrival_not_tick_one():
    # A tiny rate spreads arrivals out; if born_tick ignored arrivals,
    # late transactions would show huge latencies.
    config = OpenLoopConfig(
        adt_kind="counter", objects=4, transactions=10, arrival_rate=0.05
    )
    report = drive(config, seed=1)
    assert report.metrics.committed == 10
    # with ~20 ticks between arrivals and no contention, commit latency
    # stays small even though the run spans hundreds of ticks
    assert report.metrics.ticks > 50
    assert report.latency_summary()["p99"] < 30


def test_partitioned_drive_matches_per_shard_serial_runs():
    config = OpenLoopConfig(
        adt_kind="counter", objects=8, shards=2, transactions=30
    )
    serial = drive(config, seed=6, workers=1)
    parallel = drive(config, seed=6, workers=2)
    assert parallel.ok
    assert parallel.offered == serial.offered == 30
    assert parallel.metrics.committed == serial.metrics.committed
    assert parallel.metrics.operations == serial.metrics.operations
    # per-shard committed counts agree exactly with the serial run
    assert {
        (r["shard"], r["committed"]) for r in parallel.per_shard
    } == {(r["shard"], r["committed"]) for r in serial.per_shard}


def test_partitioned_drive_rejects_cross_shard_and_shared_trace():
    config = OpenLoopConfig(objects=8, shards=2, cross_shard=0.5)
    with pytest.raises(ValueError):
        drive(config, workers=2)
    with pytest.raises(ValueError):
        drive(
            OpenLoopConfig(objects=8, shards=2),
            workers=2,
            trace=TraceCollector(),
        )


# ---------------------------------------------------------------------------
# read-only mix
# ---------------------------------------------------------------------------


def test_read_mix_marks_scripts_read_only_with_observer_steps():
    config = OpenLoopConfig(
        adt_kind="counter", objects=8, transactions=60, read_mix=0.5
    )
    scripts = open_loop_scripts(config, random.Random(3))
    readonly = [s for s, _ in scripts if s.read_only]
    assert 10 < len(readonly) < 50  # ~half, seeded draw
    for script in readonly:
        for _obj, invocation in script.steps:
            assert invocation.name == "read"


def test_locked_baseline_draws_identical_scripts():
    snap = OpenLoopConfig(
        adt_kind="counter", objects=8, transactions=40, read_mix=0.4
    )
    locked = OpenLoopConfig(
        adt_kind="counter",
        objects=8,
        transactions=40,
        read_mix=0.4,
        ro_mode="locked",
    )
    a = open_loop_scripts(snap, random.Random(7))
    b = open_loop_scripts(locked, random.Random(7))
    assert [(s.name, s.steps, t) for s, t in a] == [
        (s.name, s.steps, t) for s, t in b
    ]
    assert any(s.read_only for s, _ in a)
    assert not any(s.read_only for s, _ in b)


def test_read_mix_rejected_for_observerless_adts():
    config = OpenLoopConfig(adt_kind="fifo", objects=4, read_mix=0.5)
    with pytest.raises(ValueError, match="no read-only observer"):
        open_loop_scripts(config, random.Random(0))


def test_drive_with_read_mix_counts_ro_commits_in_latencies():
    config = OpenLoopConfig(
        adt_kind="counter", objects=8, transactions=30, read_mix=0.4
    )
    report = drive(config, seed=4)
    m = report.metrics
    assert m.ro_committed > 0
    assert m.ro_snapshot_reads > 0
    assert m.committed + m.ro_committed == 30
    # Read-only commits show up in the latency population too.
    assert len(report.latencies) == 30
    assert "read-only" in report.format()


# ---------------------------------------------------------------------------
# latency percentiles (nearest-rank pins)
# ---------------------------------------------------------------------------


def _report_with(latencies):
    from repro.runtime.metrics import RunMetrics

    return DriveReport(
        label="pin",
        shards=1,
        workers=1,
        offered=len(latencies),
        metrics=RunMetrics(),
        wall_s=1.0,
        latencies=sorted(latencies),
    )


def test_latency_summary_pins_nearest_rank_percentiles():
    # 100 distinct values: the nearest-rank p-th percentile is exactly
    # the p-th smallest value — the off-by-one regression pinned down.
    report = _report_with(list(range(1, 101)))
    summary = report.latency_summary()
    assert summary["p50"] == 50
    assert summary["p95"] == 95
    assert summary["p99"] == 99
    assert summary["max"] == 100


def test_latency_summary_small_populations():
    assert _report_with([7]).latency_summary() == {
        "n": 1, "mean": 7.0, "p50": 7, "p95": 7, "p99": 7, "max": 7,
    }
    summary = _report_with([10, 20, 30, 40]).latency_summary()
    assert summary["p50"] == 20  # rank ceil(0.5 * 4) = 2
    assert summary["p95"] == 40
    empty = _report_with([]).latency_summary()
    assert empty["p50"] == 0 and empty["max"] == 0


# ---------------------------------------------------------------------------
# replication: the sites axis and the Poisson-preserving split
# ---------------------------------------------------------------------------


def test_config_validates_replication_axes():
    for bad in (
        dict(sites=0),
        dict(sites=2, shards=2),
        dict(sites=2, cross_shard=0.5),
        dict(sites=2, site_crashes=((2, 5, 0),)),
        dict(sites=2, site_crashes=((1, 0, 0),)),
        dict(sites=2, site_crashes=((1, 9, 4),)),
    ):
        with pytest.raises(ValueError):
            OpenLoopConfig(**bad)


def test_replication_label_suffixes_only_when_in_use():
    plain = OpenLoopConfig()
    assert "/x" not in plain.label() and "/sc" not in plain.label()
    replicated = OpenLoopConfig(sites=3, site_crashes=((1, 5, 9),))
    assert replicated.label().endswith("/x3/sc1")


def test_split_arrivals_superposition_is_unchanged():
    from repro.runtime.openloop import split_arrivals

    config = OpenLoopConfig(transactions=500, arrival_rate=2.0)
    rng = random.Random(3)
    arrivals = arrival_ticks(config, rng)
    origin = split_arrivals(arrivals, 4, rng)
    assert len(origin) == len(arrivals)
    assert set(origin) <= set(range(4))
    # thinning relabels arrivals; it never moves, drops, or adds any,
    # so the merged stream is exactly the original target-rate process
    merged = sorted(
        tick for site in range(4)
        for tick, s in zip(arrivals, origin) if s == site
    )
    assert merged == sorted(arrivals)


def test_split_arrivals_substreams_stay_poisson():
    """The pin for the split rule: i.i.d. per-arrival assignment keeps
    each sub-stream Poisson at rate/sites.

    Tested via the gap distribution: sub-stream inter-arrival gaps must
    stay exponential (CV ~ 1), where deterministic round-robin would
    produce Erlang-k gaps (CV ~ 1/sqrt(k), far below 1).
    """
    from repro.runtime.openloop import split_arrivals

    sites = 4
    config = OpenLoopConfig(transactions=8000, arrival_rate=1.0)
    rng = random.Random(7)
    # work in continuous arrival *times*, the underlying process
    times, t = [], 0.0
    for _ in range(config.transactions):
        t += rng.expovariate(config.arrival_rate)
        times.append(t)

    def gap_cv(stream):
        gaps = [b - a for a, b in zip(stream, stream[1:])]
        mean = sum(gaps) / len(gaps)
        var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        return math.sqrt(var) / mean

    origin = split_arrivals(times, sites, rng)
    for site in range(sites):
        sub = [x for x, s in zip(times, origin) if s == site]
        # rate: each sub-stream carries ~1/sites of the traffic
        assert len(sub) == pytest.approx(len(times) / sites, rel=0.1)
        # exponential gaps: CV ~ 1 (Poisson), not ~ 0.5 (Erlang-4)
        assert gap_cv(sub) == pytest.approx(1.0, abs=0.1)
    # the round-robin strawman fails exactly this pin
    round_robin = [x for i, x in enumerate(times) if i % sites == 0]
    assert gap_cv(round_robin) < 0.7


def test_split_arrivals_rejects_bad_site_count():
    from repro.runtime.openloop import split_arrivals

    with pytest.raises(ValueError, match="sites"):
        split_arrivals([1, 2, 3], 0, random.Random(0))


def test_replicated_drive_reports_per_site_and_availability():
    config = OpenLoopConfig(
        adt_kind="counter",
        objects=6,
        transactions=40,
        arrival_rate=2.0,
        sites=2,
        site_crashes=((1, 8, 20),),
    )
    report = drive(config, seed=0)
    assert report.sites == 2
    assert len(report.per_site) == 2
    assert sum(r["arrivals"] for r in report.per_site) == report.offered
    assert report.per_site[1]["failures"] == 1
    assert 0.0 < report.availability <= 1.0
    assert "availability" in report.format()


def test_replicated_drive_availability_beats_single_site_outage():
    # EXP-C17 in miniature: a site lost for good.  With a second copy
    # the service keeps committing; the single site alone cannot.
    base = dict(
        adt_kind="counter", objects=6, transactions=40, arrival_rate=2.0
    )
    replicated = drive(
        OpenLoopConfig(sites=2, site_crashes=((1, 8, 0),), **base), seed=0
    )
    alone = drive(
        OpenLoopConfig(sites=1, site_crashes=((0, 8, 0),), **base), seed=0
    )
    assert replicated.availability > alone.availability


def test_replicated_drive_rejects_workers():
    config = OpenLoopConfig(sites=2)
    with pytest.raises(ValueError, match="lockstep"):
        drive(config, seed=0, workers=2)
