"""Unit and integration tests for the discrete-event scheduler.

The integration tests are the reproduction's keystone: every history the
concrete runtime produces — under either recovery method with its
matching conflict relation — must be dynamic atomic per the *abstract*
checker.
"""

import pytest

from repro.adts import BankAccount, FifoQueue, SemiQueue, SetADT
from repro.core.atomicity import is_dynamic_atomic
from repro.core.conflict import EmptyConflict
from repro.core.events import inv
from repro.runtime import (
    ManagedObject,
    TransactionSystem,
    hotspot_banking,
    producer_consumer,
    run_scripts,
    set_membership_workload,
)
from repro.runtime.scheduler import Scheduler, TransactionScript


def single_object_system(adt, conflict, recovery):
    return TransactionSystem([ManagedObject(adt, conflict, recovery)])


class TestSchedulerBasics:
    def test_unique_names_required(self):
        ba = BankAccount("BA")
        system = single_object_system(ba, ba.nrbc_conflict(), "UIP")
        scripts = [
            TransactionScript("T", ((("BA"), inv("deposit", 1)),)),
            TransactionScript("T", ((("BA"), inv("deposit", 1)),)),
        ]
        with pytest.raises(ValueError):
            Scheduler(system, scripts)

    def test_all_commit_when_compatible(self):
        ba = BankAccount("BA")
        system = single_object_system(ba, ba.nrbc_conflict(), "UIP")
        scripts = [
            TransactionScript("T%d" % i, (("BA", inv("deposit", 1)),))
            for i in range(5)
        ]
        metrics = run_scripts(system, scripts, seed=1)
        assert metrics.committed == 5
        assert metrics.aborted == 0

    def test_metrics_count_operations(self):
        ba = BankAccount("BA")
        system = single_object_system(ba, ba.nrbc_conflict(), "UIP")
        scripts = [
            TransactionScript("T0", (("BA", inv("deposit", 1)), ("BA", inv("deposit", 2))))
        ]
        metrics = run_scripts(system, scripts, seed=0)
        assert metrics.operations == 2
        assert metrics.throughput > 0

    def test_blocking_recorded(self):
        ba = BankAccount("BA")
        system = single_object_system(ba, ba.nrbc_conflict(), "UIP")
        scripts = [
            TransactionScript("T0", (("BA", inv("balance")), ("BA", inv("balance")))),
            TransactionScript("T1", (("BA", inv("deposit", 1)),)),
        ]
        metrics = run_scripts(system, scripts, seed=3)
        assert metrics.committed == 2
        assert metrics.blocked_attempts >= 1

    def test_deadlock_broken_and_restarted(self):
        """Two transactions that each read then write force an upgrade
        deadlock; the scheduler must abort one and still finish."""
        ba = BankAccount("BA")
        system = single_object_system(ba, ba.nrbc_conflict(), "UIP")
        scripts = [
            TransactionScript("T0", (("BA", inv("balance")), ("BA", inv("deposit", 1)))),
            TransactionScript("T1", (("BA", inv("balance")), ("BA", inv("deposit", 2)))),
        ]
        metrics = run_scripts(system, scripts, seed=5)
        assert metrics.committed == 2
        assert metrics.deadlocks >= 1
        assert metrics.restarts >= 1

    def test_stuck_du_transaction_aborted(self):
        """Under-constrained DU (empty conflicts): the double withdrawal
        leaves the later committer with a poisoned view, which the
        scheduler aborts as 'stuck' rather than hanging."""
        ba = BankAccount("BA")
        system = single_object_system(ba, EmptyConflict(), "DU")
        scripts = [
            TransactionScript("A", (("BA", inv("deposit", 2)),)),
            TransactionScript("B", (("BA", inv("withdraw", 2)), ("BA", inv("balance")))),
            TransactionScript("C", (("BA", inv("withdraw", 2)), ("BA", inv("balance")))),
        ]
        # Run several seeds; at least one interleaving poisons a view.
        saw_stuck = False
        for seed in range(12):
            system = single_object_system(BankAccount("BA"), EmptyConflict(), "DU")
            metrics = run_scripts(system, scripts, seed=seed)
            saw_stuck = saw_stuck or metrics.stuck_aborts > 0
        assert saw_stuck

    def test_restart_budget_respected(self):
        ba = BankAccount("BA")
        system = single_object_system(ba, ba.nrbc_conflict(), "UIP")
        scripts = [
            TransactionScript("T0", (("BA", inv("balance")), ("BA", inv("deposit", 1)))),
            TransactionScript("T1", (("BA", inv("balance")), ("BA", inv("deposit", 2)))),
        ]
        metrics = run_scripts(system, scripts, seed=5, max_restarts=0)
        # With no restarts allowed, a deadlock victim is simply lost.
        assert metrics.committed + metrics.aborted >= 2


WORKLOAD_CASES = [
    pytest.param(
        lambda: BankAccount("BA", opening=20),
        lambda rng: hotspot_banking(rng, transactions=6, ops_per_txn=2),
        id="banking",
    ),
    pytest.param(
        lambda: SemiQueue("Q"),
        lambda rng: producer_consumer(rng, obj="Q", producers=3, consumers=3, ops_per_txn=2),
        id="semiqueue",
    ),
    pytest.param(
        lambda: FifoQueue("Q"),
        lambda rng: producer_consumer(rng, obj="Q", producers=3, consumers=3, ops_per_txn=2),
        id="fifo",
    ),
    pytest.param(
        lambda: SetADT("SET"),
        lambda rng: set_membership_workload(rng, transactions=6, ops_per_txn=2),
        id="set",
    ),
]


class TestEndToEndDynamicAtomicity:
    """The runtime's histories pass the paper's correctness criterion."""

    @pytest.mark.parametrize("adt_factory, workload", WORKLOAD_CASES)
    @pytest.mark.parametrize("seed", range(4))
    def test_uip_nrbc_histories_dynamic_atomic(self, adt_factory, workload, seed):
        import random

        adt = adt_factory()
        system = single_object_system(adt, adt.nrbc_conflict(), "UIP")
        scripts = workload(random.Random(seed))
        run_scripts(system, scripts, seed=seed)
        assert is_dynamic_atomic(system.history(), adt)

    @pytest.mark.parametrize("adt_factory, workload", WORKLOAD_CASES)
    @pytest.mark.parametrize("seed", range(4))
    def test_du_nfc_histories_dynamic_atomic(self, adt_factory, workload, seed):
        import random

        adt = adt_factory()
        system = single_object_system(adt, adt.nfc_conflict(), "DU")
        scripts = workload(random.Random(seed))
        run_scripts(system, scripts, seed=seed)
        assert is_dynamic_atomic(system.history(), adt)

    def test_multi_object_transfers_atomic(self):
        import random

        from repro.core.atomicity import is_atomic
        from repro.runtime import mixed_transfers

        adts = [BankAccount("ACC%d" % i, opening=10) for i in range(1, 4)]
        system = TransactionSystem(
            [ManagedObject(a, a.nrbc_conflict(), "UIP") for a in adts]
        )
        scripts = mixed_transfers(
            random.Random(2), objs=("ACC1", "ACC2", "ACC3"), transactions=6
        )
        metrics = run_scripts(system, scripts, seed=2)
        assert metrics.committed >= 1
        h = system.history()
        assert is_dynamic_atomic(h, {a.name: a for a in adts})
