"""Tests for the generic view-driven recovery manager."""

import random

import pytest

from repro.adts import BankAccount
from repro.core.atomicity import is_dynamic_atomic
from repro.core.events import inv
from repro.core.history import History
from repro.core.object_automaton import TransactionProgram, generate_trace
from repro.core.views import DU, SUIP, UIP
from repro.runtime import ManagedObject, TransactionSystem, run_scripts
from repro.runtime.recovery import (
    DeferredUpdateManager,
    UpdateInPlaceManager,
    ViewRecoveryManager,
    make_recovery_manager,
)
from repro.runtime.scheduler import TransactionScript


@pytest.fixture
def ba():
    return BankAccount("BA", domain=(1, 2))


def replay(manager, trace: History):
    prefix = []
    for event in trace:
        prefix.append(event)
        h = History(prefix, validate=False)
        if event.is_response:
            manager.on_execute(event.txn, h.operations_of(event.txn)[-1])
        elif event.is_commit:
            manager.on_commit(event.txn)
        elif event.is_abort:
            manager.on_abort(event.txn)
    return manager


class TestEquivalenceWithSpecialized:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_uip_manager(self, ba, seed):
        rng = random.Random(seed)
        programs = [
            TransactionProgram(
                "T%d" % i, (inv("deposit", 1), inv("withdraw", 1))
            )
            for i in range(3)
        ]
        trace = generate_trace(
            ba, UIP, ba.nrbc_conflict(), programs, rng, abort_probability=0.3
        )
        generic = replay(ViewRecoveryManager(ba, UIP), trace)
        specialized = replay(UpdateInPlaceManager(ba), trace)
        for txn in sorted(trace.active() | {"PROBE"}):
            assert generic.macro(txn) == specialized.macro(txn)

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_du_manager(self, ba, seed):
        rng = random.Random(seed + 50)
        programs = [
            TransactionProgram("T%d" % i, (inv("deposit", 2), inv("balance")))
            for i in range(3)
        ]
        trace = generate_trace(
            ba, DU, ba.nfc_conflict(), programs, rng, abort_probability=0.3
        )
        generic = replay(ViewRecoveryManager(ba, DU), trace)
        specialized = replay(DeferredUpdateManager(ba), trace)
        for txn in sorted(trace.active() | {"PROBE"}):
            assert generic.macro(txn) == specialized.macro(txn)


class TestFactory:
    def test_suip_factory(self, ba):
        manager = make_recovery_manager(ba, "SUIP")
        assert isinstance(manager, ViewRecoveryManager)
        assert manager.name == "view(SUIP)"


class TestSUIPRuntime:
    """The runtime executes a view with no specialized manager."""

    @pytest.mark.parametrize("seed", range(5))
    def test_suip_with_nfc_dynamic_atomic(self, seed):
        """EXP-V1 synthesized NFC as SUIP's requirement; the runtime
        bears it out: SUIP + NFC yields dynamic atomic histories."""
        ba = BankAccount("BA", domain=(1, 2), opening=4)
        system = TransactionSystem([ManagedObject(ba, ba.nfc_conflict(), "SUIP")])
        rng = random.Random(seed)
        scripts = []
        for i in range(4):
            steps = []
            for _ in range(2):
                kind = rng.choice(["deposit", "withdraw", "balance"])
                steps.append(
                    ("BA", inv("balance") if kind == "balance" else inv(kind, rng.choice([1, 2])))
                )
            scripts.append(TransactionScript("T%d" % i, tuple(steps)))
        metrics = run_scripts(system, scripts, seed=seed)
        assert metrics.committed >= 1
        assert is_dynamic_atomic(system.history(), ba)

    def test_suip_semantics_no_dirty_reads(self):
        from repro.core.conflict import EmptyConflict

        ba = BankAccount("BA")
        obj = ManagedObject(ba, EmptyConflict(), "SUIP")
        obj.try_operation("A", inv("deposit", 5))
        outcome = obj.try_operation("B", inv("balance"))
        assert outcome.operation == ba.balance(0)  # A's active deposit hidden

    def test_suip_poisoned_without_nfc_conflicts(self):
        """Why SUIP needs (withdraw/NO, deposit) ∈ Conflict: without it,
        B's failed withdrawal (validated against a view hiding A's
        active deposit) lands *after* the deposit in execution order,
        where it is illegal — the committed view goes empty and later
        transactions are stuck."""
        from repro.core.conflict import EmptyConflict

        ba = BankAccount("BA")
        obj = ManagedObject(ba, EmptyConflict(), "SUIP")
        obj.try_operation("A", inv("deposit", 5))
        obj.try_operation("B", inv("withdraw", 3))  # sees balance 0: "no"
        assert obj.history().operations_of("B")[-1] == ba.withdraw_no(3)
        obj.commit("B")
        obj.commit("A")
        outcome = obj.try_operation("C", inv("balance"))
        assert outcome.status == "stuck"

    def test_suip_with_nfc_blocks_the_poisoning(self):
        """With NFC the dangerous withdrawal is blocked, not executed."""
        ba = BankAccount("BA")
        obj = ManagedObject(ba, ba.nfc_conflict(), "SUIP")
        obj.try_operation("A", inv("deposit", 5))
        outcome = obj.try_operation("B", inv("withdraw", 3))
        assert outcome.status == "blocked"
        assert outcome.blockers == {"A"}
