"""Crash-schedule torture for cross-shard 2PC (partial failure).

The whole-system torture harness crashes every shard at once; these
tests kill *one shard at a time* under live cross-shard traffic and
assert the harness's invariants still hold: per-shard restart-state
equivalence, global dynamic atomicity (a shard crash must not hide a
global anomaly), and — the acceptance bar for the sharded runtime —
verdicts byte-identical to the flat system under whole-system crashes.

The schedule matrix sweeps the crash tick across the 2PC pipeline
(mid-prepare, mid-commit-record, during a group-commit hold) by
crashing at different ticks under held batches: with ``hold`` longer
than the tick gap, some victim is parked in each phase at some tick.
"""

import random

import pytest

from repro.runtime.durability import CrashableSystem
from repro.runtime.scheduler import Scheduler
from repro.runtime.sharding import audit_shard, build_sharded_system
from repro.runtime.torture import audit_recovery
from repro.runtime.workloads import mixed_transfers

NAMES = ["K%02d" % i for i in range(6)]
SHARDS = 2


class _Label:
    def __init__(self, label):
        self._label = label

    def label(self):
        return self._label


def _build(**kwargs):
    defaults = dict(
        shards=SHARDS, recovery="DU", group_commit=4, hold=3
    )
    defaults.update(kwargs)
    return build_sharded_system("bank", NAMES, **defaults)


def _run_with_shard_crashes(system, scripts, *, seed, crashes):
    """Drive scripts, crashing shard ``s`` at tick ``t`` per (t, s)."""
    plan = dict(crashes)

    def on_tick(tick):
        shard = plan.pop(tick, None)
        if shard is None:
            return False
        victims = system.crash_shard(shard)
        scheduler.handle_crash(victims, tick)
        return True

    scheduler = Scheduler(
        system, scripts, seed=seed, max_ticks=50_000, on_tick=on_tick
    )
    return scheduler.run()


def _audit_all_shards(system, label):
    """Per-shard audits plus exactly one global dynamic-atomicity check."""
    violations = []
    for shard in range(system.shards):
        violations.extend(
            audit_shard(
                system,
                shard,
                label=label,
                check_atomicity=(shard == 0),
            )
        )
    return violations


# ---------------------------------------------------------------------------
# the schedule matrix
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("crash_tick", [2, 5, 9])
@pytest.mark.parametrize("shard", [0, 1])
def test_shard_crash_matrix_preserves_recovery_invariants(
    seed, crash_tick, shard
):
    # hold=3 with group_commit=4 parks prepare and commit batches, so
    # across the (tick, shard, seed) matrix the crash lands on
    # transactions in every pipeline phase: pre-prepare, mid-prepare
    # (vote parked), mid-commit-record (record parked), and during the
    # group-commit hold itself.
    system = _build()
    scripts = mixed_transfers(
        random.Random(seed), objs=NAMES, transactions=5
    )
    metrics = _run_with_shard_crashes(
        system, scripts, seed=seed, crashes={crash_tick: shard}
    )
    # Some transactions may finish through crash resolution rather than
    # the scheduler's own commit path, so the scheduler counters need
    # not sum to the offered load; progress plus clean audits is the bar.
    assert metrics.committed > 0
    label = "matrix/t%d/s%d/seed%d" % (crash_tick, shard, seed)
    assert _audit_all_shards(system, label) == []


def test_consecutive_crashes_of_both_shards():
    system = _build()
    scripts = mixed_transfers(random.Random(3), objs=NAMES, transactions=5)
    metrics = _run_with_shard_crashes(
        system, scripts, seed=3, crashes={3: 0, 7: 1}
    )
    assert metrics.committed > 0
    assert system.shard_crashes == [1, 1]
    assert _audit_all_shards(system, "both-shards") == []


def test_shard_crash_during_long_group_commit_hold():
    # hold far beyond the crash tick: every durability request of every
    # in-flight transaction is still parked when the shard dies.
    system = _build(group_commit=16, hold=40)
    scripts = mixed_transfers(random.Random(5), objs=NAMES, transactions=5)
    metrics = _run_with_shard_crashes(
        system, scripts, seed=5, crashes={4: 1}
    )
    assert metrics.committed > 0
    assert _audit_all_shards(system, "held-batches") == []


def test_uip_shard_crashes_preserve_invariants():
    system = _build(recovery="UIP")
    scripts = mixed_transfers(random.Random(2), objs=NAMES, transactions=5)
    _run_with_shard_crashes(system, scripts, seed=2, crashes={4: 0})
    assert _audit_all_shards(system, "uip-matrix") == []


# ---------------------------------------------------------------------------
# sharded vs flat: byte-identical verdicts under whole-system crashes
# ---------------------------------------------------------------------------


def _run_whole_system_crashes(system, scripts, *, seed, crash_every=6):
    def on_tick(tick):
        if tick % crash_every == 0:
            victims = system.crash()
            scheduler.handle_crash(victims, tick)
            return True
        return False

    scheduler = Scheduler(
        system, scripts, seed=seed, max_ticks=50_000, on_tick=on_tick
    )
    return scheduler.run()


def test_whole_system_crash_verdicts_match_flat_system():
    scripts = mixed_transfers(random.Random(4), objs=NAMES, transactions=5)

    def outcome(system):
        metrics = _run_whole_system_crashes(system, scripts, seed=4)
        system.crash()  # final clean crash, as the torture harness does
        violations = audit_recovery(system, _Label("flat-vs-sharded"), "")
        return (
            metrics.row(),
            [repr(e) for e in system.history()],
            [v.invariant for v in violations],
        )

    sharded_template = _build()
    flat = outcome(CrashableSystem(list(_build().objects.values())))
    sharded = outcome(sharded_template)
    assert sharded == flat
    assert sharded[2] == []  # and the verdict is: clean
