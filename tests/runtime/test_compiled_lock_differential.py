"""Differential fuzz: compiled vs interpreted lock-manager conflict checks.

Seeded random workloads run through the full runtime (scheduler, lock
manager, waits-for deadlock detection, recovery) twice — once with the
compiled bitmask tables, once with the interpreted per-pair verdicts —
and every observable must be identical: the event-for-event object
histories (so every grant/wait/abort/deadlock decision matched) and the
complete :class:`~repro.runtime.metrics.RunMetrics` counters.

The sweep covers refine-free matrices (bank, escrow, set, fifo) and both
refine-carrying relations (key-indexed KV, priority-ordered PQ), both
recovery pairings (UIP+NRBC, DU+NFC), and the multi-object two-phase
commit path; a guard asserts the workloads actually contend, so the
comparison is not vacuous.
"""

import random

import pytest

from repro.adts import (
    BankAccount,
    EscrowAccount,
    FifoQueue,
    KVStore,
    PriorityQueue,
    SetADT,
)
from repro.runtime import ManagedObject, TransactionSystem, run_scripts
from repro.runtime.workloads import (
    escrow_workload,
    generic_workload,
    hotspot_banking,
    mixed_transfers,
    producer_consumer,
    set_membership_workload,
)

SEEDS = (0, 1, 2, 3)

CASES = [
    pytest.param(
        lambda: BankAccount("BA", opening=6),
        "nrbc_conflict",
        "UIP",
        lambda rng: hotspot_banking(rng, obj="BA"),
        id="bank-uip",
    ),
    pytest.param(
        lambda: BankAccount("BA", opening=6),
        "nfc_conflict",
        "DU",
        lambda rng: hotspot_banking(rng, obj="BA"),
        id="bank-du",
    ),
    pytest.param(
        lambda: EscrowAccount("ESC", opening=8),
        "nrbc_conflict",
        "UIP",
        lambda rng: escrow_workload(rng, obj="ESC"),
        id="escrow-uip",
    ),
    pytest.param(
        lambda: SetADT("SET"),
        "nfc_conflict",
        "DU",
        lambda rng: set_membership_workload(rng, obj="SET"),
        id="set-du",
    ),
    pytest.param(
        lambda: FifoQueue("Q"),
        "nrbc_conflict",
        "UIP",
        lambda rng: producer_consumer(rng, obj="Q"),
        id="fifo-uip",
    ),
    pytest.param(
        lambda: KVStore("KV"),
        "nrbc_conflict",
        "UIP",
        lambda rng: generic_workload(KVStore("KV"), rng, obj="KV"),
        id="kv-refine-uip",
    ),
    pytest.param(
        lambda: PriorityQueue("PQ"),
        "nfc_conflict",
        "DU",
        lambda rng: generic_workload(PriorityQueue("PQ"), rng, obj="PQ"),
        id="pqueue-refine-du",
    ),
]


def run_once(factory, relation, recovery, scripts_fn, seed, compiled):
    adt = factory()
    conflict = getattr(adt, relation)()
    obj = ManagedObject(adt, conflict, recovery, compiled_conflicts=compiled)
    system = TransactionSystem([obj])
    metrics = run_scripts(system, scripts_fn(random.Random(seed)), seed=seed)
    return obj.locks.mode, tuple(system.history()), metrics.counters()


@pytest.mark.parametrize("factory,relation,recovery,scripts_fn", CASES)
def test_compiled_and_interpreted_runs_identical(
    factory, relation, recovery, scripts_fn
):
    contended = 0
    for seed in SEEDS:
        fast_mode, fast_history, fast_counters = run_once(
            factory, relation, recovery, scripts_fn, seed, "auto"
        )
        slow_mode, slow_history, slow_counters = run_once(
            factory, relation, recovery, scripts_fn, seed, False
        )
        assert fast_mode == "compiled" and slow_mode == "interpreted"
        assert fast_history == slow_history, seed
        assert fast_counters == slow_counters, seed
        contended += fast_counters.get("blocked_attempts", 0)
    # the sweep must exercise real lock conflicts, not empty tables
    assert contended > 0


def test_multi_object_transfers_identical():
    """Two-phase commit + cross-object waits-for graph, both paths."""

    def run(seed, compiled):
        objs = [
            ManagedObject(
                BankAccount(name, opening=6),
                BankAccount(name).nrbc_conflict(),
                "UIP",
                compiled_conflicts=compiled,
            )
            for name in ("ACC1", "ACC2", "ACC3")
        ]
        system = TransactionSystem(objs)
        metrics = run_scripts(
            system, mixed_transfers(random.Random(seed)), seed=seed
        )
        return tuple(system.history()), metrics.counters()

    for seed in SEEDS:
        assert run(seed, "auto") == run(seed, False), seed


def test_interpreted_env_flag_forces_both_paths_off(monkeypatch):
    """REPRO_INTERPRETED_CONFLICTS=1 downgrades 'auto' to interpreted."""
    monkeypatch.setenv("REPRO_INTERPRETED_CONFLICTS", "1")
    mode, history, counters = run_once(
        lambda: BankAccount("BA", opening=6),
        "nrbc_conflict",
        "UIP",
        lambda rng: hotspot_banking(rng, obj="BA"),
        0,
        "auto",
    )
    assert mode == "interpreted"
    monkeypatch.delenv("REPRO_INTERPRETED_CONFLICTS")
    mode2, history2, counters2 = run_once(
        lambda: BankAccount("BA", opening=6),
        "nrbc_conflict",
        "UIP",
        lambda rng: hotspot_banking(rng, obj="BA"),
        0,
        "auto",
    )
    assert mode2 == "compiled"
    assert (history, counters) == (history2, counters2)
