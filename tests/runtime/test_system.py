"""Unit tests for ManagedObject and TransactionSystem."""

import pytest

from repro.adts import BankAccount, Register
from repro.core.events import inv
from repro.core.object_automaton import ObjectAutomaton
from repro.core.views import DU, UIP
from repro.runtime.errors import InvalidTransactionState, UnknownObjectError
from repro.runtime.system import ManagedObject, TransactionSystem


def make_ba_object(recovery="UIP"):
    ba = BankAccount("BA")
    return ba, ManagedObject(ba, ba.nrbc_conflict() if recovery == "UIP" else ba.nfc_conflict(), recovery)


class TestManagedObject:
    def test_ok_outcome(self):
        ba, obj = make_ba_object()
        outcome = obj.try_operation("A", inv("deposit", 5))
        assert outcome.ok
        assert outcome.operation == ba.deposit(5)

    def test_response_follows_view(self):
        ba, obj = make_ba_object()
        obj.try_operation("A", inv("deposit", 5))
        outcome = obj.try_operation("A", inv("withdraw", 3))
        assert outcome.operation == ba.withdraw_ok(3)

    def test_blocked_outcome(self):
        ba, obj = make_ba_object()
        obj.try_operation("A", inv("balance"))
        outcome = obj.try_operation("B", inv("deposit", 1))
        assert outcome.status == "blocked"
        assert outcome.blockers == {"A"}

    def test_blocked_retry_succeeds_after_commit(self):
        ba, obj = make_ba_object()
        obj.try_operation("A", inv("balance"))
        obj.try_operation("B", inv("deposit", 1))
        obj.commit("A")
        outcome = obj.try_operation("B", inv("deposit", 1))
        assert outcome.ok

    def test_pending_invocation_consistency(self):
        ba, obj = make_ba_object()
        obj.try_operation("A", inv("balance"))
        obj.try_operation("B", inv("deposit", 1))  # blocked: B pending
        with pytest.raises(InvalidTransactionState):
            obj.try_operation("B", inv("deposit", 2))  # different invocation

    def test_abort_undoes_effects(self):
        ba, obj = make_ba_object()
        obj.try_operation("A", inv("deposit", 5))
        obj.abort("A")
        outcome = obj.try_operation("B", inv("balance"))
        assert outcome.operation == ba.balance(0)

    def test_prepare_vetoes_pending(self):
        ba, obj = make_ba_object()
        obj.try_operation("A", inv("balance"))
        obj.try_operation("B", inv("deposit", 1))  # B now pending (blocked)
        assert not obj.prepare("B")
        assert obj.prepare("A")

    def test_history_records_events(self):
        ba, obj = make_ba_object()
        obj.try_operation("A", inv("deposit", 5))
        obj.commit("A")
        h = obj.history()
        assert h.committed() == {"A"}
        assert h.opseq() == (ba.deposit(5),)

    def test_blocked_attempt_recorded_once(self):
        ba, obj = make_ba_object()
        obj.try_operation("A", inv("balance"))
        obj.try_operation("B", inv("deposit", 1))
        obj.try_operation("B", inv("deposit", 1))  # retry: no new event
        invocations = [e for e in obj.history() if e.is_invocation and e.txn == "B"]
        assert len(invocations) == 1

    def test_runtime_history_accepted_by_abstract_automaton(self):
        """Every ManagedObject run is a schedule of I(X, Spec, View, Conflict)."""
        ba, obj = make_ba_object()
        obj.try_operation("A", inv("deposit", 5))
        obj.try_operation("B", inv("balance"))  # blocked by A's deposit
        obj.commit("A")
        obj.try_operation("B", inv("balance"))
        obj.commit("B")
        assert ObjectAutomaton.accepts(
            ba, UIP, ba.nrbc_conflict(), obj.history()
        )

    def test_du_recovery_private_views(self):
        # EmptyConflict isolates the recovery semantics from locking:
        # under DU, B's balance read does not see A's active deposit.
        from repro.core.conflict import EmptyConflict

        ba = BankAccount("BA")
        obj = ManagedObject(ba, EmptyConflict(), "DU")
        obj.try_operation("A", inv("deposit", 5))
        outcome = obj.try_operation("B", inv("balance"))
        assert outcome.operation == ba.balance(0)  # A's deposit invisible


class TestTransactionSystem:
    def make_system(self):
        a1 = BankAccount("ACC1", opening=10)
        a2 = BankAccount("ACC2", opening=10)
        return TransactionSystem(
            [
                ManagedObject(a1, a1.nrbc_conflict(), "UIP"),
                ManagedObject(a2, a2.nrbc_conflict(), "UIP"),
            ]
        )

    def test_duplicate_names_rejected(self):
        ba = BankAccount("BA")
        with pytest.raises(ValueError):
            TransactionSystem(
                [
                    ManagedObject(ba, ba.nrbc_conflict(), "UIP"),
                    ManagedObject(BankAccount("BA"), ba.nrbc_conflict(), "UIP"),
                ]
            )

    def test_unknown_object(self):
        system = self.make_system()
        with pytest.raises(UnknownObjectError):
            system.invoke("A", "NOPE", inv("deposit", 1))

    def test_multi_object_transfer_commits(self):
        system = self.make_system()
        assert system.invoke("A", "ACC1", inv("withdraw", 3)).ok
        assert system.invoke("A", "ACC2", inv("deposit", 3)).ok
        assert system.commit("A")
        assert system.status("A") == "committed"
        h = system.history()
        assert {e.obj for e in h if e.is_commit} == {"ACC1", "ACC2"}

    def test_abort_touches_all_objects(self):
        system = self.make_system()
        system.invoke("A", "ACC1", inv("withdraw", 3))
        system.invoke("A", "ACC2", inv("deposit", 3))
        system.abort("A")
        assert system.status("A") == "aborted"
        h = system.history()
        assert {e.obj for e in h if e.is_abort} == {"ACC1", "ACC2"}

    def test_finished_transactions_frozen(self):
        system = self.make_system()
        system.invoke("A", "ACC1", inv("deposit", 1))
        system.commit("A")
        with pytest.raises(InvalidTransactionState):
            system.invoke("A", "ACC1", inv("deposit", 1))
        with pytest.raises(InvalidTransactionState):
            system.commit("A")

    def test_global_history_well_formed(self):
        system = self.make_system()
        system.invoke("A", "ACC1", inv("withdraw", 3))
        system.invoke("B", "ACC2", inv("deposit", 1))
        system.invoke("A", "ACC2", inv("deposit", 3))
        system.commit("B")
        system.commit("A")
        from repro.core.history import History

        History(system.history().events)  # validates

    def test_commit_vetoed_with_pending(self):
        """A blocked (pending) transaction cannot commit: 2PC aborts it."""
        ba = BankAccount("BA")
        system = TransactionSystem([ManagedObject(ba, ba.nrbc_conflict(), "UIP")])
        system.invoke("A", "BA", inv("balance"))
        system.invoke("B", "BA", inv("deposit", 1))  # blocked, pending
        assert not system.commit("B")
        assert system.status("B") == "aborted"

    def test_commit_with_no_touched_objects(self):
        system = self.make_system()
        assert system.commit("A")  # trivially commits; no events recorded
        assert system.status("A") == "committed"
