"""Unit tests for the lock manager and the waits-for graph."""

import pytest

from repro.adts import BankAccount
from repro.core.conflict import EmptyConflict, TotalConflict
from repro.core.events import op
from repro.runtime.lock_manager import LockManager, WaitsForGraph

A = op("X", "a")
B = op("X", "b")


class TestLockManager:
    def test_no_conflicts_all_free(self):
        lm = LockManager(EmptyConflict())
        lm.acquire("T1", A)
        assert lm.can_acquire("T2", A)

    def test_conflict_blocks(self):
        lm = LockManager(TotalConflict())
        lm.acquire("T1", A)
        assert not lm.can_acquire("T2", B)
        assert lm.blockers("T2", B) == {"T1"}

    def test_own_locks_never_block(self):
        lm = LockManager(TotalConflict())
        lm.acquire("T1", A)
        assert lm.can_acquire("T1", B)

    def test_release_frees(self):
        lm = LockManager(TotalConflict())
        lm.acquire("T1", A)
        released = lm.release_all("T1")
        assert released == (A,)
        assert lm.can_acquire("T2", B)

    def test_release_unknown_is_noop(self):
        lm = LockManager(TotalConflict())
        assert lm.release_all("T9") == ()

    def test_held_by(self):
        lm = LockManager(EmptyConflict())
        lm.acquire("T1", A)
        lm.acquire("T1", B)
        assert lm.held_by("T1") == (A, B)
        assert lm.held_by("T2") == ()

    def test_holders(self):
        lm = LockManager(EmptyConflict())
        lm.acquire("T1", A)
        lm.acquire("T2", B)
        assert lm.holders() == {"T1", "T2"}

    def test_asymmetric_conflicts_respected(self):
        ba = BankAccount()
        lm = LockManager(ba.nrbc_conflict())
        lm.acquire("T1", ba.deposit(1))
        # withdraw-OK conflicts with held deposit...
        assert lm.blockers("T2", ba.withdraw_ok(1)) == {"T1"}
        lm2 = LockManager(ba.nrbc_conflict())
        lm2.acquire("T1", ba.withdraw_ok(1))
        # ...but deposit does not conflict with held withdraw-OK.
        assert lm2.blockers("T2", ba.deposit(1)) == frozenset()


class TestWaitsForGraph:
    def test_no_cycle_in_chain(self):
        g = WaitsForGraph()
        g.wait("A", ["B"])
        g.wait("B", ["C"])
        assert g.find_cycle() is None

    def test_two_cycle(self):
        g = WaitsForGraph()
        g.wait("A", ["B"])
        g.wait("B", ["A"])
        cycle = g.find_cycle()
        assert cycle is not None
        assert set(cycle) == {"A", "B"}

    def test_three_cycle(self):
        g = WaitsForGraph()
        g.wait("A", ["B"])
        g.wait("B", ["C"])
        g.wait("C", ["A"])
        assert set(g.find_cycle()) == {"A", "B", "C"}

    def test_self_edges_ignored(self):
        g = WaitsForGraph()
        g.wait("A", ["A"])
        assert g.find_cycle() is None

    def test_wait_replaces_stale_edges(self):
        g = WaitsForGraph()
        g.wait("A", ["B"])
        g.wait("A", ["C"])  # B released meanwhile; only C blocks now
        assert g.edges() == {("A", "C")}
        g.wait("B", ["A"])
        assert g.find_cycle() is None  # no A->B edge anymore

    def test_clear_waiter(self):
        g = WaitsForGraph()
        g.wait("A", ["B"])
        g.clear_waiter("A")
        assert g.edges() == frozenset()

    def test_remove_transaction_both_roles(self):
        g = WaitsForGraph()
        g.wait("A", ["B"])
        g.wait("B", ["A"])
        g.remove_transaction("A")
        assert g.find_cycle() is None
        assert g.edges() == frozenset()

    def test_empty_block_set_clears(self):
        g = WaitsForGraph()
        g.wait("A", ["B"])
        g.wait("A", [])
        assert g.edges() == frozenset()

    def test_deterministic_cycle(self):
        g = WaitsForGraph()
        g.wait("A", ["B"])
        g.wait("B", ["A"])
        assert g.find_cycle() == g.find_cycle()
