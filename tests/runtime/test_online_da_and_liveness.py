"""Stronger runtime assurances: online dynamic atomicity and liveness.

Online dynamic atomicity (paper, Section 7) is the induction invariant
in Theorem 9's proof — every *commit set* must serialize in every
precedes-consistent order, not just the already-committed one.  The
runtime under matching relations satisfies it; and the scheduler is
live: with a generous restart budget every script eventually commits.
"""

import random

import pytest

from repro.adts import BankAccount, SemiQueue
from repro.core.atomicity import is_online_dynamic_atomic
from repro.core.events import inv
from repro.runtime import ManagedObject, TransactionSystem, run_scripts
from repro.runtime.scheduler import TransactionScript


def banking_scripts(rng: random.Random, n=5, ops=2):
    scripts = []
    for i in range(n):
        steps = []
        for _ in range(ops):
            kind = rng.choice(["deposit", "withdraw", "balance"])
            steps.append(
                ("BA", inv("balance") if kind == "balance" else inv(kind, rng.choice([1, 2])))
            )
        scripts.append(TransactionScript("T%d" % i, tuple(steps)))
    return scripts


class TestOnlineDynamicAtomicity:
    @pytest.mark.parametrize("seed", range(4))
    def test_uip_nrbc_online(self, seed):
        ba = BankAccount("BA", opening=4)
        system = TransactionSystem([ManagedObject(ba, ba.nrbc_conflict(), "UIP")])
        run_scripts(system, banking_scripts(random.Random(seed)), seed=seed)
        assert is_online_dynamic_atomic(system.history(), ba)

    @pytest.mark.parametrize("seed", range(4))
    def test_du_nfc_online(self, seed):
        ba = BankAccount("BA", opening=4)
        system = TransactionSystem([ManagedObject(ba, ba.nfc_conflict(), "DU")])
        run_scripts(system, banking_scripts(random.Random(seed + 10)), seed=seed)
        assert is_online_dynamic_atomic(system.history(), ba)

    @pytest.mark.parametrize("seed", range(3))
    def test_semiqueue_online(self, seed):
        sq = SemiQueue("SQ", domain=("a", "b"))
        system = TransactionSystem([ManagedObject(sq, sq.nrbc_conflict(), "UIP")])
        rng = random.Random(seed)
        scripts = [
            TransactionScript(
                "T%d" % i,
                tuple(
                    ("SQ", inv("enq", rng.choice(["a", "b"])) if rng.random() < 0.6 else inv("deq"))
                    for _ in range(2)
                ),
            )
            for i in range(4)
        ]
        run_scripts(system, scripts, seed=seed)
        assert is_online_dynamic_atomic(system.history(), sq)


class TestLiveness:
    @pytest.mark.parametrize("seed", range(8))
    def test_every_script_eventually_commits(self, seed):
        """With enough restarts and a funded account, no script starves."""
        ba = BankAccount("BA", opening=100)
        system = TransactionSystem([ManagedObject(ba, ba.nrbc_conflict(), "UIP")])
        scripts = banking_scripts(random.Random(seed), n=6, ops=3)
        metrics = run_scripts(system, scripts, seed=seed, max_restarts=200)
        assert metrics.committed == 6

    @pytest.mark.parametrize("seed", range(4))
    def test_liveness_under_du(self, seed):
        ba = BankAccount("BA", opening=100)
        system = TransactionSystem([ManagedObject(ba, ba.nfc_conflict(), "DU")])
        scripts = banking_scripts(random.Random(seed), n=6, ops=3)
        metrics = run_scripts(system, scripts, seed=seed, max_restarts=200)
        assert metrics.committed == 6

    def test_progress_metric_consistency(self):
        ba = BankAccount("BA", opening=100)
        system = TransactionSystem([ManagedObject(ba, ba.nrbc_conflict(), "UIP")])
        scripts = banking_scripts(random.Random(0), n=4, ops=2)
        metrics = run_scripts(system, scripts, seed=0, max_restarts=200)
        h = system.history()
        assert metrics.committed == len(h.committed())
        assert metrics.aborted == len(h.aborted())
