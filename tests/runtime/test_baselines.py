"""Unit tests for the baseline conflict relations."""

import pytest

from repro.adts import BankAccount, Counter, Register, SemiQueue, SetADT
from repro.runtime.baselines import invocation_conflict, read_write_conflict


class TestReadWriteConflict:
    def test_bank_account_classes(self):
        ba = BankAccount()
        rw = read_write_conflict(ba)
        # Updates are writers.
        assert rw.conflicts(ba.deposit(1), ba.deposit(2))
        assert rw.conflicts(ba.withdraw_ok(1), ba.balance(0))
        assert rw.conflicts(ba.balance(0), ba.deposit(1))
        # Failed withdrawals and balances are readers: reader/reader free.
        assert not rw.conflicts(ba.balance(0), ba.balance(1))
        assert not rw.conflicts(ba.withdraw_no(1), ba.balance(0))
        assert not rw.conflicts(ba.withdraw_no(1), ba.withdraw_no(2))

    def test_contains_both_typed_relations(self):
        """2PL is correct with either recovery method: it contains NFC
        and NRBC (on the ground alphabet)."""
        ba = BankAccount(domain=(1, 2))
        rw = read_write_conflict(ba)
        alphabet = ba.ground_alphabet()
        assert rw.contains(ba.nfc_conflict(), alphabet)
        assert rw.contains(ba.nrbc_conflict(), alphabet)

    def test_contains_relations_for_all_small_adts(self):
        for factory in (
            lambda: Counter(domain=(1,)),
            lambda: Register(),
            lambda: SetADT(domain=("a",)),
            lambda: SemiQueue(domain=("a",)),
        ):
            adt = factory()
            rw = read_write_conflict(adt)
            alphabet = adt.ground_alphabet()
            assert rw.contains(adt.nfc_conflict(), alphabet), adt.name
            assert rw.contains(adt.nrbc_conflict(), alphabet), adt.name

    def test_register_rw_equals_typed(self):
        """On the register, 2PL *is* the typed relation (no loss)."""
        reg = Register()
        rw = read_write_conflict(reg)
        alphabet = reg.ground_alphabet()
        assert rw.pairs(alphabet) == reg.nfc_conflict().pairs(alphabet)

    def test_symmetric(self):
        ba = BankAccount()
        assert read_write_conflict(ba).is_symmetric(ba.ground_alphabet())


class TestInvocationConflict:
    def test_lifts_result_dependence(self):
        """withdraw/OK and withdraw/NO share an invocation: lifting NFC
        merges their conflicts, so failed withdrawals now conflict with
        each other's invocation class wherever successful ones did."""
        ba = BankAccount(domain=(1, 2))
        lifted = invocation_conflict(ba, ba.nfc_conflict())
        # Ground NFC: two failed withdrawals commute...
        assert not ba.nfc_conflict().conflicts(ba.withdraw_no(1), ba.withdraw_no(2))
        # ...but their invocations can also produce OK results, which conflict.
        assert lifted.conflicts(ba.withdraw_no(1), ba.withdraw_no(2))

    def test_contains_base(self):
        ba = BankAccount(domain=(1, 2))
        base = ba.nfc_conflict()
        lifted = invocation_conflict(ba, base)
        assert lifted.contains(base, ba.ground_alphabet())

    def test_no_spurious_conflicts_for_result_free_types(self):
        """The counter's responses are determined by the invocation
        (read aside), so lifting adds nothing between updates."""
        ctr = Counter(domain=(1,))
        lifted = invocation_conflict(ctr, ctr.nfc_conflict())
        assert not lifted.conflicts(ctr.increment(1), ctr.increment(1))

    def test_lifted_nrbc(self):
        ba = BankAccount(domain=(1, 2))
        lifted = invocation_conflict(ba, ba.nrbc_conflict())
        # (w-ok, w-ok) free under NRBC, but w-no vs w-ok conflicts, and
        # they share the withdraw invocation: lifted withdraws conflict.
        assert lifted.conflicts(ba.withdraw_ok(1), ba.withdraw_ok(2))
