"""Tests for structured run tracing and trace<->metrics reconciliation.

The load-bearing property: every :class:`RunMetrics` counter rebuilt
from the trace stream equals the scheduler's own accounting,
field-for-field, across workloads, seeds, group-commit batch sizes and
crash schedules.  A trace that reconciles is a correctness cross-check
on the scheduler; a mismatch means an emit site and a counter increment
have drifted apart.
"""

import random

import pytest

from repro.adts.registry import make_adt
from repro.runtime import (
    EVENT_SCHEMA,
    CrashableSystem,
    DurableObject,
    FaultPlan,
    GroupCommitPolicy,
    ManagedObject,
    Scheduler,
    StableLog,
    TortureConfig,
    TraceCollector,
    TransactionSystem,
    commit_latencies,
    contention_profile,
    format_trace_report,
    latency_histogram,
    load_jsonl,
    reconcile,
    reconstruct_counters,
    run_schedule,
    validate_event,
)
from repro.runtime.workloads import (
    escrow_workload,
    hotspot_banking,
    producer_consumer,
)

WORKLOADS = {
    "hotspot": ("bank", hotspot_banking),
    "escrow": ("escrow", escrow_workload),
}


def build_traced_run(workload, seed, group_commit=1, hold=3):
    """One traced scheduler run; returns (metrics, collector)."""
    rng = random.Random(seed)
    if workload == "fifo":
        adt = make_adt("fifo")
        scripts = producer_consumer(
            rng, obj=adt.name, producers=3, consumers=3, ops_per_txn=2
        )
    else:
        kind, generator = WORKLOADS[workload]
        adt = make_adt(kind)
        scripts = generator(rng, obj=adt.name, transactions=6, ops_per_txn=3)
    conflict = adt.nfc_conflict()
    if group_commit > 1:
        policy = GroupCommitPolicy(group_commit, hold)
        obj = DurableObject(
            adt, conflict, "DU", log_factory=lambda: StableLog(policy=policy)
        )
        system = CrashableSystem([obj])
    else:
        system = TransactionSystem([ManagedObject(adt, conflict, "DU")])
    trace = TraceCollector()
    metrics = Scheduler(
        system,
        scripts,
        seed=seed,
        label="%s-s%d-gc%d" % (workload, seed, group_commit),
        trace=trace,
    ).run()
    return metrics, trace


def assert_reconciles(trace):
    for event in trace.events:
        error = validate_event(event)
        assert error is None, error
    results = reconcile(trace.events)
    assert results, "no completed run segment"
    for result in results:
        assert result.ok, result.mismatches
    return results


class TestReconciliationMatrix:
    @pytest.mark.parametrize("workload", ["hotspot", "escrow", "fifo"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_volatile_runs_reconcile(self, workload, seed):
        metrics, trace = build_traced_run(workload, seed)
        results = assert_reconciles(trace)
        assert results[0].reported == metrics.counters()

    @pytest.mark.parametrize("workload", ["hotspot", "fifo"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_group_commit_runs_reconcile(self, workload, seed):
        metrics, trace = build_traced_run(workload, seed, group_commit=4)
        assert_reconciles(trace)
        # Group commit actually exercised: requests were coalesced.
        assert metrics.force_requests >= metrics.forces

    def test_torture_crash_schedule_reconciles(self):
        trace = TraceCollector()
        config = TortureConfig(
            "bank", "DU", transactions=4, ops_per_txn=2, group_commit=2, hold=2
        )
        plan = FaultPlan.crash_at(5, "crash-after-append")
        run_schedule(config, plan, seed=3, trace=trace)
        results = assert_reconciles(trace)
        kinds = {e["kind"] for e in trace.events}
        assert "crash" in kinds and "recovery" in kinds
        # The crash aborts reconcile too (the bugfix counter).
        assert results[0].reported["crash_aborts"] > 0

    def test_torture_torn_force_reconciles(self):
        trace = TraceCollector()
        config = TortureConfig(
            "bank", "DU", transactions=4, ops_per_txn=2, group_commit=3, hold=2
        )
        plan = FaultPlan.crash_at(8, "crash-during-force", keep=1, seed=7)
        run_schedule(config, plan, seed=7, trace=trace)
        assert_reconciles(trace)

    def test_traced_and_untraced_runs_identical(self):
        rng_a, rng_b = random.Random(5), random.Random(5)
        adt_a, adt_b = make_adt("bank"), make_adt("bank")
        scripts_a = hotspot_banking(
            rng_a, obj=adt_a.name, transactions=6, ops_per_txn=3
        )
        scripts_b = hotspot_banking(
            rng_b, obj=adt_b.name, transactions=6, ops_per_txn=3
        )
        sys_a = TransactionSystem(
            [ManagedObject(adt_a, adt_a.nfc_conflict(), "DU")]
        )
        sys_b = TransactionSystem(
            [ManagedObject(adt_b, adt_b.nfc_conflict(), "DU")]
        )
        untraced = Scheduler(sys_a, scripts_a, seed=5, label="x").run()
        traced = Scheduler(
            sys_b, scripts_b, seed=5, label="x", trace=TraceCollector()
        ).run()
        assert untraced.counters() == traced.counters()


class TestCrashRestartRegression:
    """Scheduler.handle_crash: backoff reset + crash_aborts accounting."""

    def _scheduler(self):
        adt = make_adt("bank")
        system = TransactionSystem(
            [ManagedObject(adt, adt.nfc_conflict(), "DU")]
        )
        from repro.core.events import Invocation
        from repro.runtime.scheduler import TransactionScript

        scripts = [
            TransactionScript(
                "T%d" % i, ((adt.name, Invocation("deposit", (1,))),)
            )
            for i in range(2)
        ]
        return Scheduler(system, scripts, seed=0, label="crash-test")

    def test_backoff_reset_on_crash_restart(self):
        scheduler = self._scheduler()
        entry = scheduler._live[0]
        entry.backoff_until = 10_000  # stale pre-crash backoff window
        entry.stall_ticks = 9
        scheduler.handle_crash({entry.txn}, tick=12)
        assert entry.backoff_until == 0
        assert entry.stall_ticks == 0
        assert entry.txn == "T0~r1"

    def test_crash_aborts_counted_separately(self):
        scheduler = self._scheduler()
        victims = {t.txn for t in scheduler._live}
        scheduler.handle_crash(victims, tick=1)
        assert scheduler.metrics.aborted == 2
        assert scheduler.metrics.crash_aborts == 2
        assert scheduler.metrics.restarts == 2

    def test_deadlock_aborts_not_counted_as_crash(self):
        metrics, trace = build_traced_run("hotspot", 0)
        if metrics.aborted:
            assert metrics.crash_aborts == 0


class TestEventStream:
    def test_jsonl_round_trip(self, tmp_path):
        import json

        _, trace = build_traced_run("hotspot", 1)
        path = str(tmp_path / "t.jsonl")
        count = trace.dump_jsonl(path)
        assert count == len(trace.events)
        loaded = load_jsonl(path)
        # JSON canonicalizes tuples to lists; compare canonical forms.
        assert loaded == [
            json.loads(json.dumps(e)) for e in trace.events
        ]
        assert reconcile(loaded)[0].ok

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(ValueError, match="line 1"):
            load_jsonl(str(path))

    def test_load_rejects_schema_violation(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "txn-commit", "tick": 3}\n')
        with pytest.raises(ValueError, match="missing required fields"):
            load_jsonl(str(path))

    def test_validate_event_cases(self):
        assert validate_event("nope") is not None
        assert validate_event({"kind": "martian", "tick": 0}) is not None
        assert validate_event({"kind": "op-ok", "tick": -1}) is not None
        ok = {"kind": "op-ok", "tick": 2, "txn": "T", "obj": "X", "op": "w"}
        assert validate_event(ok) is None

    def test_every_schema_kind_has_fields_tuple(self):
        for kind, required in EVENT_SCHEMA.items():
            assert isinstance(required, tuple), kind

    def test_lock_waits_carry_conflict_pairs(self):
        metrics, trace = build_traced_run("hotspot", 0)
        waits = [e for e in trace.events if e["kind"] == "lock-wait"]
        if metrics.blocked_attempts:
            assert waits
        for event in waits:
            assert event["pairs"], "lock-wait without attribution"
            for new_label, held_label, holder in event["pairs"]:
                assert new_label and held_label and holder

    def test_2pc_phases_in_order_per_txn(self):
        _, trace = build_traced_run("fifo", 2, group_commit=4)
        phases = {}
        for event in trace.events:
            if event["kind"].startswith("2pc-"):
                phases.setdefault(event["txn"], []).append(event["kind"])
        assert phases
        for txn, kinds in phases.items():
            assert kinds[0] == "2pc-prepare", txn
            assert kinds[-1] == "2pc-complete", txn


class TestDerivedReports:
    def test_commit_latencies_match_committed(self):
        metrics, trace = build_traced_run("hotspot", 2)
        rows = commit_latencies(trace.events)
        assert len(rows) == metrics.committed
        for row in rows:
            assert row["latency"] == row["committed"] - row["born"]
            assert row["stall_ticks"] + row["other_ticks"] == row["latency"]

    def test_latency_histogram_partitions(self):
        buckets = latency_histogram([0, 1, 2, 3, 9, 70])
        assert sum(count for _, _, count in buckets) == 6
        for lo, hi, _ in buckets:
            assert lo <= hi

    def test_contention_profile_totals(self):
        metrics, trace = build_traced_run("hotspot", 0)
        profile = contention_profile(trace.events)
        assert profile["blocked_attempts"] == metrics.blocked_attempts
        assert sum(profile["objects"].values()) == metrics.blocked_attempts
        for _obj, _new, _held, count, share in profile["pairs"]:
            assert count > 0
            assert 0.0 < share <= 1.0

    def test_report_renders(self):
        _, trace = build_traced_run("hotspot", 0)
        text = format_trace_report(trace.events)
        assert "reconcile" in text and "OK" in text
        assert "contention" in text

    def test_reconstruct_counters_empty_stream(self):
        counters = reconstruct_counters([])
        assert all(v == 0 for v in counters.values())


class TestPercentiles:
    """Nearest-rank percentile pins (the ceil(q*n)-1 off-by-one fix)."""

    def test_shared_percentile_constant(self):
        from repro.runtime.trace import PERCENTILES

        assert PERCENTILES == (0.50, 0.95, 0.99)

    def test_nearest_rank_pins(self):
        from repro.runtime.trace import _percentile

        data = list(range(1, 101))
        assert _percentile(data, 0.50) == 50
        assert _percentile(data, 0.95) == 95
        assert _percentile(data, 0.99) == 99
        # Small populations: rank ceil(q*n), 1-indexed.
        assert _percentile([10, 20, 30, 40], 0.50) == 20
        assert _percentile([10, 20, 30, 40], 0.95) == 40
        assert _percentile([7], 0.99) == 7
        assert _percentile([], 0.50) == 0

    def test_report_prints_all_three_percentiles(self):
        _, trace = build_traced_run("hotspot", 0)
        text = format_trace_report(trace.events)
        assert "p50" in text and "p95" in text and "p99" in text
