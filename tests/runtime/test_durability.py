"""Tests for crash recovery: stable logs, restart policies, crash injection.

Central invariant: restart reproduces the abstract view of the
post-crash history (all in-flight transactions aborted).
"""

import random

import pytest

from repro.adts import BankAccount, SemiQueue, SetADT
from repro.core.atomicity import is_dynamic_atomic
from repro.core.events import inv
from repro.core.views import DU, UIP
from repro.runtime.durability import CrashableSystem, DurableObject, run_with_crashes
from repro.runtime.scheduler import TransactionScript
from repro.runtime.wal import (
    CheckpointRecord,
    CommitRecord,
    IntentionsRecord,
    OperationRecord,
    RedoOnlyLog,
    StableLog,
    UndoRedoLog,
)


class TestStableLog:
    def test_lsns_monotonic(self):
        log = StableLog()
        r1 = log.append(lambda lsn: CommitRecord(lsn, txn="A"))
        r2 = log.append(lambda lsn: CommitRecord(lsn, txn="B"))
        assert r2.lsn == r1.lsn + 1

    def test_truncate(self):
        log = StableLog()
        for t in "ABC":
            log.append(lambda lsn, t=t: CommitRecord(lsn, txn=t))
        dropped = log.truncate_before(2)
        assert dropped == 2
        assert [r.txn for r in log.records()] == ["C"]

    def test_force_counted(self):
        log = StableLog()
        log.force()
        log.force()
        assert log.forces == 2


class TestUndoRedoLogRestart:
    def make_ba_log(self, policy):
        ba = BankAccount()
        wal = UndoRedoLog(ba, restart_policy=policy)
        return ba, wal

    @pytest.mark.parametrize("policy", ["replay-winners", "redo-undo"])
    def test_committed_survive(self, policy):
        ba, wal = self.make_ba_log(policy)
        wal.on_execute("A", ba.deposit(5))
        wal.on_commit("A")
        assert wal.restart() == frozenset({5})

    @pytest.mark.parametrize("policy", ["replay-winners", "redo-undo"])
    def test_in_flight_lost(self, policy):
        ba, wal = self.make_ba_log(policy)
        wal.on_execute("A", ba.deposit(5))
        wal.on_commit("A")
        wal.on_execute("B", ba.withdraw_ok(3))  # crash before B commits
        assert wal.restart() == frozenset({5})

    @pytest.mark.parametrize("policy", ["replay-winners", "redo-undo"])
    def test_aborted_excluded(self, policy):
        ba, wal = self.make_ba_log(policy)
        wal.on_execute("A", ba.deposit(5))
        wal.on_abort("A")
        wal.on_execute("B", ba.deposit(2))
        wal.on_commit("B")
        assert wal.restart() == frozenset({2})

    @pytest.mark.parametrize("policy", ["replay-winners", "redo-undo"])
    def test_interleaved_winner_and_loser(self, policy):
        ba, wal = self.make_ba_log(policy)
        wal.on_execute("A", ba.deposit(5))
        wal.on_execute("B", ba.deposit(3))
        wal.on_commit("A")
        # B in flight at crash.
        assert wal.restart() == frozenset({5})

    def test_redo_undo_requires_logical_undo(self):
        with pytest.raises(ValueError):
            UndoRedoLog(SetADT(), restart_policy="redo-undo")

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            UndoRedoLog(BankAccount(), restart_policy="magic")

    @pytest.mark.parametrize("seed", range(5))
    def test_policies_agree(self, seed):
        """Random legal logging schedules: both restart policies agree."""
        rng = random.Random(seed)
        ba = BankAccount()
        a = UndoRedoLog(ba, restart_policy="replay-winners")
        b = UndoRedoLog(ba, restart_policy="redo-undo")
        finished = set()
        for i in range(30):
            candidates = [t for t in ("T0", "T1", "T2", "T3") if t not in finished]
            if not candidates:
                break
            txn = rng.choice(candidates)
            action = rng.random()
            if action < 0.6:
                operation = ba.deposit(rng.choice([1, 2]))
                for wal in (a, b):
                    wal.on_execute(txn, operation)
            elif action < 0.8:
                for wal in (a, b):
                    wal.on_commit(txn)
                finished.add(txn)
            else:
                for wal in (a, b):
                    wal.on_abort(txn)
                finished.add(txn)
        assert a.restart() == b.restart()

    def test_checkpoint_truncates_and_restores(self):
        ba = BankAccount()
        wal = UndoRedoLog(ba)
        wal.on_execute("A", ba.deposit(5))
        wal.on_commit("A")
        wal.checkpoint(frozenset({5}))
        assert len(wal.log) == 1  # just the checkpoint
        wal.on_execute("B", ba.deposit(1))
        wal.on_commit("B")
        assert wal.restart() == frozenset({6})

    def test_restart_idempotent(self):
        ba = BankAccount()
        wal = UndoRedoLog(ba)
        wal.on_execute("A", ba.deposit(5))
        wal.on_commit("A")
        assert wal.restart() == wal.restart()


class TestRedoOnlyLogRestart:
    def test_commit_forces_intentions(self):
        ba = BankAccount()
        wal = RedoOnlyLog(ba)
        wal.on_execute("A", ba.deposit(5))  # no log traffic
        assert len(wal.log) == 0
        wal.on_commit("A", (ba.deposit(5),))
        assert len(wal.log) == 1
        assert wal.restart() == frozenset({5})

    def test_commit_order_replay(self):
        ba = BankAccount()
        wal = RedoOnlyLog(ba)
        wal.on_commit("B", (ba.deposit(2),))
        wal.on_commit("A", (ba.withdraw_ok(1),))
        assert wal.restart() == frozenset({1})

    def test_aborts_free(self):
        ba = BankAccount()
        wal = RedoOnlyLog(ba)
        wal.on_abort("A")
        assert len(wal.log) == 0

    def test_checkpoint(self):
        ba = BankAccount()
        wal = RedoOnlyLog(ba)
        wal.on_commit("A", (ba.deposit(5),))
        wal.checkpoint(frozenset({5}))
        wal.on_commit("B", (ba.deposit(2),))
        assert wal.restart() == frozenset({7})


class TestDurableObject:
    def test_crash_restores_committed_state(self):
        ba = BankAccount("BA")
        obj = DurableObject(ba, ba.nrbc_conflict(), "UIP")
        obj.try_operation("A", inv("deposit", 5))
        obj.commit("A")
        obj.try_operation("B", inv("deposit", 3))  # in flight
        obj.crash_kill("B")
        obj.crash_and_restart()
        assert obj.recovery.macro("PROBE") == frozenset({5})

    def test_restart_matches_abstract_view(self):
        """restart() == states_after(View(H_post_crash, fresh))."""
        ba = BankAccount("BA")
        for recovery, view in (("UIP", UIP), ("DU", DU)):
            obj = DurableObject(
                ba,
                ba.nrbc_conflict() if recovery == "UIP" else ba.nfc_conflict(),
                recovery,
            )
            obj.try_operation("A", inv("deposit", 5))
            obj.commit("A")
            obj.try_operation("B", inv("withdraw", 2))
            obj.crash_kill("B")
            h = obj.history()
            obj.crash_and_restart()
            expected = ba.states_after(view(h, "PROBE"))
            assert obj.recovery.macro("PROBE") == expected, recovery

    def test_uip_replay_after_restart_handles_aborts(self):
        """The post-restart manager must replay from the restored base."""
        ba = BankAccount("BA")
        obj = DurableObject(ba, ba.nrbc_conflict(), "UIP", uip_strategy="replay")
        obj.try_operation("A", inv("deposit", 5))
        obj.commit("A")
        obj.crash_and_restart()
        obj.try_operation("B", inv("deposit", 2))
        obj.abort("B")  # replay-based undo after a restart
        assert obj.recovery.macro("PROBE") == frozenset({5})

    def test_checkpoint_requires_quiescence_under_uip(self):
        ba = BankAccount("BA")
        obj = DurableObject(ba, ba.nrbc_conflict(), "UIP")
        obj.try_operation("A", inv("deposit", 5))
        with pytest.raises(RuntimeError):
            obj.checkpoint()
        obj.commit("A")
        obj.checkpoint()
        obj.crash_and_restart()
        assert obj.recovery.macro("PROBE") == frozenset({5})

    def test_du_checkpoint_any_time(self):
        ba = BankAccount("BA")
        obj = DurableObject(ba, ba.nfc_conflict(), "DU")
        obj.try_operation("A", inv("deposit", 5))  # active intentions
        obj.checkpoint()  # base is committed-only: fine
        obj.crash_and_restart()
        assert obj.recovery.macro("PROBE") == frozenset({0})


class TestCrashableSystem:
    def make_system(self, recovery="UIP"):
        ba = BankAccount("BA", opening=10)
        conflict = ba.nrbc_conflict() if recovery == "UIP" else ba.nfc_conflict()
        return ba, CrashableSystem([DurableObject(ba, conflict, recovery)])

    def test_crash_kills_active(self):
        ba, system = self.make_system()
        system.invoke("A", "BA", inv("deposit", 5))
        victims = system.crash()
        assert victims == {"A"}
        assert system.status("A") == "aborted"

    def test_committed_survive_system_crash(self):
        ba, system = self.make_system()
        system.invoke("A", "BA", inv("deposit", 5))
        system.commit("A")
        system.invoke("B", "BA", inv("withdraw", 3))
        system.crash()
        outcome = system.invoke("C", "BA", inv("balance"))
        assert outcome.operation == ba.balance(15)

    def test_history_across_crash_dynamic_atomic(self):
        ba, system = self.make_system()
        system.invoke("A", "BA", inv("deposit", 5))
        system.commit("A")
        system.invoke("B", "BA", inv("withdraw", 3))
        system.crash()
        system.invoke("C", "BA", inv("balance"))
        system.commit("C")
        assert is_dynamic_atomic(system.history(), ba)

    @pytest.mark.parametrize("recovery", ["UIP", "DU"])
    @pytest.mark.parametrize("seed", range(3))
    def test_run_with_periodic_crashes(self, recovery, seed):
        ba, system = self.make_system(recovery)
        rng = random.Random(seed)
        scripts = [
            TransactionScript(
                "T%d" % i,
                tuple(
                    ("BA", inv(rng.choice(["deposit", "withdraw"]), rng.choice([1, 2])))
                    for _ in range(2)
                ),
            )
            for i in range(6)
        ]
        metrics, crashes = run_with_crashes(
            system, scripts, seed=seed, crash_every=4
        )
        assert metrics.committed >= 1
        assert system.crash_count == crashes >= 1
        assert is_dynamic_atomic(system.history(), ba)
