"""A larger integration scenario: a bank branch.

Several accounts plus a shared audit set, mixed single- and
multi-object transactions (transfers, audits), both recovery methods in
one system, crashes injected — every global history audited with the
fast dynamic-atomicity checker.
"""

import random

import pytest

from repro.adts import BankAccount, SetADT
from repro.core.events import inv
from repro.core.fast_atomicity import fast_is_atomic, fast_is_dynamic_atomic
from repro.runtime import (
    CrashableSystem,
    DurableObject,
    ManagedObject,
    TransactionSystem,
    run_scripts,
)
from repro.runtime.durability import run_with_crashes
from repro.runtime.scheduler import TransactionScript

ACCOUNTS = ("ACC1", "ACC2", "ACC3")


def branch_specs():
    specs = {name: BankAccount(name, opening=20) for name in ACCOUNTS}
    specs["AUDITLOG"] = SetADT("AUDITLOG", domain=("t1", "t2", "t3", "t4"))
    return specs


def branch_system(durable: bool = False):
    objects = []
    for name in ACCOUNTS:
        ba = BankAccount(name, opening=20)
        cls = DurableObject if durable else ManagedObject
        objects.append(cls(ba, ba.nrbc_conflict(), "UIP"))
    audit = SetADT("AUDITLOG", domain=("t1", "t2", "t3", "t4"))
    cls = DurableObject if durable else ManagedObject
    objects.append(cls(audit, audit.nfc_conflict(), "DU"))
    return CrashableSystem(objects) if durable else TransactionSystem(objects)


def branch_scripts(rng: random.Random, n: int = 10):
    scripts = []
    for i in range(n):
        kind = rng.random()
        if kind < 0.5:  # transfer between two accounts + audit mark
            src, dst = rng.sample(ACCOUNTS, 2)
            amount = rng.choice([1, 2, 3])
            steps = [
                (src, inv("withdraw", amount)),
                (dst, inv("deposit", amount)),
                ("AUDITLOG", inv("insert", rng.choice(["t1", "t2", "t3", "t4"]))),
            ]
        elif kind < 0.8:  # deposit at one account
            steps = [(rng.choice(ACCOUNTS), inv("deposit", rng.choice([1, 2])))]
        else:  # audit: membership probes plus a balance read
            steps = [
                ("AUDITLOG", inv("member", rng.choice(["t1", "t2"]))),
                (rng.choice(ACCOUNTS), inv("balance")),
            ]
        scripts.append(TransactionScript("T%d" % i, tuple(steps)))
    return scripts


@pytest.mark.parametrize("seed", range(5))
def test_branch_runs_are_dynamic_atomic(seed):
    system = branch_system()
    scripts = branch_scripts(random.Random(seed))
    metrics = run_scripts(system, scripts, seed=seed)
    assert metrics.committed >= 5
    h = system.history()
    specs = branch_specs()
    assert fast_is_dynamic_atomic(h, specs)
    assert fast_is_atomic(h, specs)


@pytest.mark.parametrize("seed", range(3))
def test_branch_projections_locally_dynamic_atomic(seed):
    system = branch_system()
    run_scripts(system, branch_scripts(random.Random(seed)), seed=seed)
    h = system.history()
    specs = branch_specs()
    for obj in h.objects():
        assert fast_is_dynamic_atomic(h.project_objects(obj), specs[obj])


@pytest.mark.parametrize("seed", range(3))
def test_branch_with_crashes(seed):
    system = branch_system(durable=True)
    scripts = branch_scripts(random.Random(seed), n=8)
    metrics, crashes = run_with_crashes(
        system, scripts, seed=seed, crash_every=7
    )
    assert crashes >= 1
    assert metrics.committed >= 1
    assert fast_is_dynamic_atomic(system.history(), branch_specs())


def test_transfers_conserve_money():
    """Committed transfers move value; the branch total is conserved
    (modulo committed pure deposits, which we track)."""
    system = branch_system()
    rng = random.Random(11)
    scripts = branch_scripts(rng, n=12)
    run_scripts(system, scripts, seed=11)
    h = system.history()
    perm = h.permanent()
    deposited = withdrawn = 0
    for operation in perm.opseq():
        if operation.obj in ACCOUNTS:
            if operation.name == "deposit":
                deposited += operation.args[0]
            elif operation.name == "withdraw" and operation.response == "ok":
                withdrawn += operation.args[0]
    # Final balances must equal openings + deposits - successful withdrawals.
    total = 0
    for name in ACCOUNTS:
        spec = BankAccount(name, opening=20)
        states = spec.states_after(perm.project_objects(name).opseq())
        assert len(states) == 1
        total += next(iter(states))
    assert total == 3 * 20 + deposited - withdrawn
