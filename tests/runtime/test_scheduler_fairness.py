"""Unit tests for the scheduler's deadlock-fairness mechanisms.

Three cooperating pieces guarantee liveness under repeated deadlocks:

* restart-count aging — the victim is the cycle member with the fewest
  prior restarts, so sacrifices rotate;
* victim-waits-for-winners — a victim re-enters only after the cycle
  members it lost to have finished;
* exponential randomized backoff — re-collision windows grow.
"""

import random

import pytest

from repro.adts import BankAccount
from repro.core.events import inv
from repro.runtime import ManagedObject, TransactionSystem
from repro.runtime.scheduler import Scheduler, TransactionScript, _LiveTxn


def upgrade_scripts(n: int = 3):
    """Read-then-update scripts: the classic upgrade-deadlock generator."""
    return [
        TransactionScript(
            "T%d" % i,
            (("BA", inv("balance")), ("BA", inv("deposit", 1))),
        )
        for i in range(n)
    ]


def make_scheduler(n=3, seed=0, max_restarts=100):
    ba = BankAccount("BA", opening=10)
    system = TransactionSystem([ManagedObject(ba, ba.nfc_conflict(), "DU")])
    return system, Scheduler(
        system, upgrade_scripts(n), seed=seed, max_restarts=max_restarts
    )


class TestAgingVictimSelection:
    def test_fewest_restarts_chosen(self):
        entries = [
            _LiveTxn(script=TransactionScript("A", ()), txn="A", restarts=2),
            _LiveTxn(script=TransactionScript("B", ()), txn="B", restarts=0),
            _LiveTxn(script=TransactionScript("C", ()), txn="C", restarts=1),
        ]
        assert Scheduler._victim_key_min(entries).txn == "B"

    def test_tie_breaks_toward_youngest(self):
        entries = [
            _LiveTxn(script=TransactionScript("A", ()), txn="A", restarts=1, born_tick=1),
            _LiveTxn(script=TransactionScript("B", ()), txn="B", restarts=1, born_tick=5),
        ]
        assert Scheduler._victim_key_min(entries).txn == "B"

    def test_rotation_across_repeated_deadlocks(self):
        """No single script absorbs all sacrifices."""
        system, scheduler = make_scheduler(n=3, seed=2)
        metrics = scheduler.run()
        assert metrics.committed == 3
        restarts = [e.restarts for e in scheduler._live]
        # Aging spreads the pain: no entry restarts vastly more than others.
        assert max(restarts) - min(restarts) <= 3


class TestVictimWaitsForWinners:
    def test_wait_for_assigned_on_deadlock(self):
        system, scheduler = make_scheduler(n=2, seed=1)
        metrics = scheduler.run()
        assert metrics.committed == 2
        # At least one deadlock was broken along the way.
        assert metrics.deadlocks >= 1

    def test_wait_for_clears_when_winner_finishes(self):
        system, scheduler = make_scheduler(n=3, seed=4)
        scheduler.run()
        for entry in scheduler._live:
            assert not entry.wait_for  # all waits resolved by the end

    def test_all_upgrade_scripts_commit(self):
        """The canonical starvation scenario converges for many seeds."""
        for seed in range(10):
            system, scheduler = make_scheduler(n=4, seed=seed)
            metrics = scheduler.run()
            assert metrics.committed == 4, "seed %d starved" % seed


class TestBackoffGrowth:
    def test_backoff_window_bounds(self):
        system, scheduler = make_scheduler(n=2, seed=0)
        entry = scheduler._live[0]
        entry.restarts = 0
        scheduler._abort_and_restart(entry, tick=100, reason="deadlock")
        assert entry.restarts == 1
        # First restart: horizon = steps(2) * (1 + 1) = 4.
        assert 100 < entry.backoff_until <= 104
        entry.restarts = 9
        scheduler._abort_and_restart(entry, tick=200, reason="deadlock")
        assert entry.restarts == 10
        # Tenth restart: horizon = 2 * min(11, 32) = 22.
        assert 200 < entry.backoff_until <= 222
