"""Tests for the sharded runtime (:mod:`repro.runtime.sharding`).

The load-bearing property: sharding is *routing metadata* — a sharded
system executes byte-identically to the flat crashable system over the
same objects — plus the genuinely new capability, partial failure
(`crash_shard`), whose in-doubt resolution must honor the commit-point
rule across crashed and healthy shards.
"""

import random

import pytest

from repro.core.events import inv
from repro.runtime.durability import CrashableSystem
from repro.runtime.scheduler import Scheduler
from repro.runtime.sharding import (
    ShardedSystem,
    audit_shard,
    build_sharded_system,
    shard_of,
)
from repro.runtime.trace import TraceCollector
from repro.runtime.workloads import mixed_transfers

# A (shard 1) and D (shard 0) differ under shards=2 (CRC-32 placement).
TWO_SHARD_NAMES = ["A", "D"]


def _build(names, *, shards, group_commit=1, hold=4, recovery="DU"):
    return build_sharded_system(
        "bank",
        names,
        shards=shards,
        recovery=recovery,
        group_commit=group_commit,
        hold=hold,
    )


# ---------------------------------------------------------------------------
# placement
# ---------------------------------------------------------------------------


def test_shard_of_is_stable_and_in_range():
    names = ["K%02d" % i for i in range(64)]
    for shards in (1, 2, 3, 8):
        placements = [shard_of(n, shards) for n in names]
        assert all(0 <= p < shards for p in placements)
        # deterministic: recomputing gives the same placement
        assert placements == [shard_of(n, shards) for n in names]
    # every object lands in shard 0 when there is only one shard
    assert {shard_of(n, 1) for n in names} == {0}


def test_shard_of_rejects_bad_counts():
    with pytest.raises(ValueError):
        shard_of("X", 0)


def test_shard_objects_partition_the_system():
    names = ["K%02d" % i for i in range(16)]
    system = _build(names, shards=4)
    seen = []
    for k in range(4):
        owned = system.shard_objects(k)
        assert owned == sorted(owned)
        assert all(system.shard_of_object(n) == k for n in owned)
        seen.extend(owned)
    assert sorted(seen) == sorted(names)


def test_sharded_system_validates_shard_arguments():
    system = _build(["D", "E"], shards=2)
    with pytest.raises(ValueError):
        system.crash_shard(2)
    with pytest.raises(ValueError):
        ShardedSystem(list(system.objects.values()), shards=0)


# ---------------------------------------------------------------------------
# sharded == flat (routing is metadata)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_sharded_execution_is_byte_identical_to_flat(shards):
    names = ["K%02d" % i for i in range(6)]
    scripts = mixed_transfers(
        random.Random(7), objs=names, transactions=6
    )

    def run(system):
        metrics = Scheduler(system, scripts, seed=7, label="eq").run()
        return metrics.row(), [repr(e) for e in system.history()]

    flat_system = _build(names, shards=1)
    flat = run(CrashableSystem(list(flat_system.objects.values())))
    sharded = run(_build(names, shards=shards))
    assert sharded == flat


def test_shard_count_does_not_change_execution():
    names = ["K%02d" % i for i in range(6)]
    scripts = mixed_transfers(random.Random(3), objs=names, transactions=6)
    rows = []
    for shards in (1, 2, 4):
        system = _build(names, shards=shards, group_commit=4, hold=3)
        rows.append(Scheduler(system, scripts, seed=3).run().row())
    assert rows[0] == rows[1] == rows[2]


# ---------------------------------------------------------------------------
# partial failure: crash_shard
# ---------------------------------------------------------------------------


def test_crash_shard_kills_unprepared_transaction_everywhere():
    system = _build(TWO_SHARD_NAMES, shards=2, group_commit=8, hold=100)
    assert system.shard_of_object("A") != system.shard_of_object("D")
    assert system.invoke("T1", "A", inv("deposit", 1)).ok
    assert system.invoke("T1", "D", inv("deposit", 1)).ok
    victims = system.crash_shard(system.shard_of_object("A"))
    assert victims == {"T1"}
    assert system.status("T1") == "aborted"
    # the healthy object performed a clean abort: locks released
    assert not system.objects["D"].locks.holders()
    assert system.shard_crashes[system.shard_of_object("A")] == 1


def test_crash_shard_mid_prepare_kills_transaction():
    # group_commit=8, hold=100: the prepare forces sit in held batches,
    # so no commit record is durable anywhere when the shard dies.
    system = _build(TWO_SHARD_NAMES, shards=2, group_commit=8, hold=100)
    assert system.invoke("T1", "A", inv("deposit", 1)).ok
    assert system.invoke("T1", "D", inv("deposit", 1)).ok
    assert system.commit("T1") is False  # parked on the prepare flush
    victims = system.crash_shard(system.shard_of_object("A"))
    assert victims == {"T1"}
    assert system.status("T1") == "aborted"
    for name in TWO_SHARD_NAMES:
        h = system.objects[name].history()
        assert "T1" in h.aborted()


def test_crash_shard_mid_commit_record_kills_without_surviving_record():
    # A and B both live in shard 1, so every commit record of T1 rides
    # that shard's held batches.  Drive 2PC past prepare (hold expiry
    # flushes the prepare batch), into submit: commit records appended
    # but parked in a fresh batch — then the shard dies.  No commit
    # record survives anywhere, so the transaction dies everywhere.
    system = _build(["A", "B", "D"], shards=2, group_commit=8, hold=2)
    assert system.shard_of_object("A") == system.shard_of_object("B")
    assert system.invoke("T1", "A", inv("deposit", 1)).ok
    assert system.invoke("T1", "B", inv("deposit", 1)).ok
    assert system.commit("T1") is False
    for _ in range(3):
        system.tick()  # hold expiry: prepare batch flushes
    assert system.commit("T1") is False  # submit: commit records parked
    assert "T1" in system._committing
    assert system._committing["T1"].phase == "committing"
    victims = system.crash_shard(system.shard_of_object("A"))
    assert victims == {"T1"}
    assert system.status("T1") == "aborted"


def test_crash_shard_mid_commit_completes_from_surviving_record():
    # Same schedule, but the transaction spans both shards: the commit
    # record parked at the *healthy* shard survives the crash (its
    # process is alive), so resolution completes the commit everywhere
    # rather than retracting it.
    system = _build(TWO_SHARD_NAMES, shards=2, group_commit=8, hold=2)
    assert system.invoke("T1", "A", inv("deposit", 1)).ok
    assert system.invoke("T1", "D", inv("deposit", 1)).ok
    assert system.commit("T1") is False
    for _ in range(3):
        system.tick()
    assert system.commit("T1") is False  # submit: commit records parked
    victims = system.crash_shard(system.shard_of_object("A"))
    assert victims == set()
    assert system.status("T1") == "committed"
    for name in TWO_SHARD_NAMES:
        obj = system.objects[name]
        assert obj.wal.has_durable_commit("T1")
        assert "T1" in obj.history().committed()


def test_crash_shard_completes_commit_past_the_commit_point():
    system = _build(TWO_SHARD_NAMES, shards=2, group_commit=8, hold=100)
    assert system.invoke("T1", "A", inv("deposit", 1)).ok
    assert system.invoke("T1", "D", inv("deposit", 1)).ok
    assert system.commit("T1") is False
    for obj in system.objects.values():
        obj.wal.log.force()  # prepare durability lands
    assert system.commit("T1") is False  # submit: commit records parked
    # the commit point: A's commit record reaches stable storage
    system.objects["A"].wal.log.force()
    victims = system.crash_shard(system.shard_of_object("D"))
    assert victims == set()
    assert system.status("T1") == "committed"
    for name in TWO_SHARD_NAMES:
        obj = system.objects[name]
        assert obj.wal.has_durable_commit("T1")
        assert "T1" in obj.history().committed()
    # the commit pipeline entry is gone; later transactions run normally
    assert "T1" not in system._committing
    assert system.invoke("T2", "D", inv("deposit", 1)).ok
    assert system.commit("T2") in (True, False)


def test_crash_shard_spares_transactions_on_healthy_shards():
    system = _build(TWO_SHARD_NAMES, shards=2, group_commit=8, hold=100)
    assert system.invoke("T1", "A", inv("deposit", 1)).ok  # dies with its shard
    assert system.invoke("T2", "D", inv("deposit", 1)).ok  # untouched
    victims = system.crash_shard(system.shard_of_object("A"))
    assert victims == {"T1"}
    assert system.status("T2") == "active"
    assert "T2" in system.objects["D"].locks.holders()
    # the survivor can still commit (async under the held batch: force
    # the log to land its durability work, then the commit completes)
    assert system.commit("T2") is False
    system.objects["D"].wal.log.force()
    assert system.commit("T2") is False  # submit: commit record parked
    system.objects["D"].wal.log.force()
    assert system.commit("T2") is True


def test_crashed_shard_recovers_committed_state():
    system = _build(TWO_SHARD_NAMES, shards=2)
    for t in range(3):
        txn = "T%d" % t
        assert system.invoke(txn, "A", inv("deposit", 1)).ok
        assert system.commit(txn) is True
    shard = system.shard_of_object("A")
    system.crash_shard(shard)
    violations = audit_shard(system, shard, check_atomicity=False)
    assert violations == []
    # recovered object keeps serving
    outcome = system.invoke("T9", "A", inv("deposit", 1))
    assert outcome.ok


# ---------------------------------------------------------------------------
# per-shard accounting and trace stamping
# ---------------------------------------------------------------------------


def test_force_accounting_by_shard_sums_to_global():
    names = ["K%02d" % i for i in range(8)]
    system = _build(names, shards=4, group_commit=2, hold=2)
    scripts = mixed_transfers(random.Random(5), objs=names, transactions=6)
    Scheduler(system, scripts, seed=5).run()
    rows = system.force_accounting_by_shard()
    assert [r["shard"] for r in rows] == [0, 1, 2, 3]
    forces, requests, records = system.force_accounting()
    assert sum(r["forces"] for r in rows) == forces
    assert sum(r["force_requests"] for r in rows) == requests
    assert sum(r["forced_records"] for r in rows) == records


def test_trace_events_are_stamped_with_shard_ids():
    names = ["K%02d" % i for i in range(6)]
    system = _build(names, shards=2, group_commit=2, hold=2)
    trace = TraceCollector()
    scripts = mixed_transfers(random.Random(2), objs=names, transactions=4)
    Scheduler(system, scripts, seed=2, trace=trace).run()
    stamped = [e for e in trace.events if "shard" in e]
    assert stamped, "object/log events must carry shard ids"
    for event in stamped:
        obj = event.get("obj")
        if obj in system.objects:
            assert event["shard"] == system.shard_of_object(obj)
    # system-level 2PC events span shards and stay unstamped
    for event in trace.events:
        if event["kind"].startswith("2pc-"):
            assert "shard" not in event


def test_shard_crash_emits_trace_event():
    system = _build(TWO_SHARD_NAMES, shards=2)
    trace = TraceCollector()
    trace.bind_system(system)
    assert system.invoke("T1", "A", inv("deposit", 1)).ok
    shard = system.shard_of_object("A")
    system.crash_shard(shard)
    crashes = [e for e in trace.events if e["kind"] == "shard-crash"]
    assert len(crashes) == 1
    assert crashes[0]["shard"] == shard
    assert crashes[0]["victims"] == ["T1"]
