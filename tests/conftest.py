"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.adts import (
    BankAccount,
    Counter,
    EscrowAccount,
    FifoQueue,
    KVStore,
    Register,
    SemiQueue,
    SetADT,
    Stack,
)


@pytest.fixture
def ba() -> BankAccount:
    return BankAccount()


@pytest.fixture
def funded_ba() -> BankAccount:
    return BankAccount(opening=100)


@pytest.fixture
def counter() -> Counter:
    return Counter()


@pytest.fixture
def register() -> Register:
    return Register()


@pytest.fixture
def set_adt() -> SetADT:
    return SetADT()


@pytest.fixture
def kv() -> KVStore:
    return KVStore()


@pytest.fixture
def queue() -> FifoQueue:
    return FifoQueue()


@pytest.fixture
def semiqueue() -> SemiQueue:
    return SemiQueue()


@pytest.fixture
def stack() -> Stack:
    return Stack()


@pytest.fixture
def escrow() -> EscrowAccount:
    return EscrowAccount(opening=5)


def small_adts():
    """Factories for the finite-or-small ADTs used in parameterized tests."""
    return [
        ("bank", lambda: BankAccount(domain=(1, 2))),
        ("counter", lambda: Counter(domain=(1,))),
        ("register", lambda: Register()),
        ("set", lambda: SetADT(domain=("a",))),
        ("kv", lambda: KVStore(keys=("k",), values=("u", "v"))),
        ("queue", lambda: FifoQueue(domain=("a",))),
        ("semiqueue", lambda: SemiQueue(domain=("a",))),
        ("stack", lambda: Stack(domain=("a",))),
        ("escrow", lambda: EscrowAccount(domain=(1, 2), opening=1)),
    ]
