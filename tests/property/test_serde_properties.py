"""Property tests: JSON serialization round-trips arbitrary histories."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import serde
from repro.core.history import History

from .strategies import well_formed_histories

SETTINGS = settings(max_examples=60, deadline=None)


@SETTINGS
@given(well_formed_histories())
def test_round_trip_preserves_history(h):
    assert serde.loads(serde.dumps(h)) == h


@SETTINGS
@given(well_formed_histories())
def test_round_trip_preserves_derived_structure(h):
    back = serde.loads(serde.dumps(h))
    assert back.opseq() == h.opseq()
    assert back.precedes() == h.precedes()
    assert back.committed() == h.committed()
    assert back.aborted() == h.aborted()
    assert back.commit_order() == h.commit_order()


@SETTINGS
@given(well_formed_histories())
def test_document_shape_is_stable(h):
    doc = serde.history_to_dict(h)
    assert set(doc) == {"events"}
    assert all("kind" in e and "obj" in e and "txn" in e for e in doc["events"])


@SETTINGS
@given(
    st.recursive(
        st.one_of(
            st.none(),
            st.booleans(),
            st.integers(min_value=-10**6, max_value=10**6),
            st.text(max_size=10),
        ),
        lambda children: st.lists(children, max_size=3).map(tuple),
        max_leaves=8,
    )
)
def test_value_codec_round_trips(value):
    assert serde.decode_value(serde.encode_value(value)) == value
