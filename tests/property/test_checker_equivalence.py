"""Property tests: fast checkers ≡ reference checkers.

Random histories over random finite specifications — the adversarial
regime for the pruned/memoized implementations.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.atomicity import (
    find_dynamic_atomicity_violation,
    is_serializable,
    serializable_in_order,
)
from repro.core.conflict import EmptyConflict
from repro.core.fast_atomicity import (
    fast_find_dynamic_atomicity_violation,
    fast_find_serialization_order,
    fast_is_serializable,
)
from repro.core.object_automaton import TransactionProgram, generate_trace
from repro.core.views import DU, UIP

from .strategies import BA
from .test_random_spec_theorems import INVOCATIONS, random_programs, random_specs

SETTINGS = settings(max_examples=30, deadline=None)


@SETTINGS
@given(random_specs(), st.integers(min_value=0, max_value=5))
def test_dynamic_atomicity_agrees_on_random_specs(spec, seed):
    rng = random.Random(seed)
    trace = generate_trace(
        spec, UIP, EmptyConflict(), random_programs(rng), rng,
        abort_probability=0.2,
    )
    reference = find_dynamic_atomicity_violation(trace, spec)
    fast = fast_find_dynamic_atomicity_violation(trace, spec)
    assert (reference is None) == (fast is None)
    if fast is not None:
        # The fast witness must be a genuine precedes-consistent failure.
        assert not serializable_in_order(trace.permanent(), fast.order, spec)


@SETTINGS
@given(random_specs(), st.integers(min_value=0, max_value=5))
def test_serializability_agrees_on_random_specs(spec, seed):
    rng = random.Random(seed)
    trace = generate_trace(
        spec, DU, EmptyConflict(), random_programs(rng), rng,
        abort_probability=0.2,
    )
    perm = trace.permanent()
    assert fast_is_serializable(perm, spec) == is_serializable(perm, spec)


@SETTINGS
@given(random_specs(), st.integers(min_value=0, max_value=5))
def test_found_orders_are_legal(spec, seed):
    rng = random.Random(seed)
    trace = generate_trace(
        spec, UIP, EmptyConflict(), random_programs(rng), rng,
    )
    perm = trace.permanent()
    order = fast_find_serialization_order(perm, spec)
    if order is not None:
        assert serializable_in_order(perm, order, spec)


@SETTINGS
@given(st.integers(min_value=0, max_value=40))
def test_bank_account_traces_agree(seed):
    rng = random.Random(seed)
    programs = random_programs(rng)
    from repro.core.events import inv

    programs = [
        TransactionProgram(
            p.txn,
            tuple(
                rng.choice(
                    [inv("deposit", 1), inv("withdraw", 1), inv("balance")]
                )
                for _ in range(2)
            ),
        )
        for p in programs
    ]
    trace = generate_trace(BA, UIP, EmptyConflict(), programs, rng)
    reference = find_dynamic_atomicity_violation(trace, BA)
    fast = fast_find_dynamic_atomicity_violation(trace, BA)
    assert (reference is None) == (fast is None)
