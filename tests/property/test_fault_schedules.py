"""Property-based fault-schedule tests.

Hypothesis drives the torture harness with *arbitrary* fault plans —
random fault kinds, indexes, torn-force prefixes and IO-error bursts
over random workload shapes — and asserts the recovery invariants hold
on every schedule.  A second property aims Hypothesis's shrinker at the
planted ``skip-commit-force`` bug: the search must find a failing
schedule, and shrinking must reduce it to a minimal one (a single
fault), demonstrating that a torture failure report is debuggable.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.faults import CRASH_KINDS, FaultEvent, FaultPlan, RetryPolicy
from repro.runtime.torture import TortureConfig, run_schedule

SETTINGS = settings(max_examples=40, deadline=None)

ADT_KINDS = ("bank", "counter", "fifo", "set", "escrow")


@st.composite
def fault_events(draw, horizon=30):
    at = draw(st.integers(min_value=0, max_value=horizon - 1))
    kind = draw(st.sampled_from(CRASH_KINDS + ("io-error",)))
    if kind == "crash-during-force":
        keep = draw(st.one_of(st.none(), st.integers(min_value=0, max_value=4)))
        return FaultEvent(at, kind, keep=keep)
    if kind == "io-error":
        burst = draw(st.integers(min_value=1, max_value=5))
        return FaultEvent(at, kind, burst=burst)
    return FaultEvent(at, kind)


@st.composite
def fault_plans(draw, horizon=30, max_faults=3):
    count = draw(st.integers(min_value=0, max_value=max_faults))
    events = []
    used = set()
    for _ in range(count):
        event = draw(fault_events(horizon))
        if event.at in used:
            continue
        used.add(event.at)
        events.append(event)
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return FaultPlan(events, seed=seed, retry=RetryPolicy())


@st.composite
def torture_configs(draw):
    kind = draw(st.sampled_from(ADT_KINDS))
    recovery = draw(st.sampled_from(["DU", "UIP"]))
    policy = "replay-winners"
    if recovery == "UIP" and kind in ("bank", "counter", "escrow"):
        policy = draw(st.sampled_from(["replay-winners", "redo-undo"]))
    return TortureConfig(
        kind,
        recovery,
        restart_policy=policy,
        transactions=draw(st.integers(min_value=2, max_value=4)),
        ops_per_txn=draw(st.integers(min_value=1, max_value=3)),
        checkpoint_every=draw(st.sampled_from([0, 0, 5])),
    )


@SETTINGS
@given(
    config=torture_configs(),
    plan=fault_plans(),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_random_schedules_never_violate_invariants(config, plan, seed):
    """No fault plan may break a recovery invariant."""
    result = run_schedule(config, plan, seed=seed)
    assert not result.violations, "\n".join(
        v.format() for v in result.violations
    )


@SETTINGS
@given(plan=fault_plans(horizon=60, max_faults=3), seed=st.integers(0, 2**16))
def test_random_schedules_are_reproducible(plan, seed):
    """The same (config, plan, seed) triple yields the identical result."""
    config = TortureConfig("bank", "DU", transactions=3, ops_per_txn=2)
    first = run_schedule(config, plan, seed=seed)
    replay = FaultPlan(plan.events, seed=plan.seed, retry=plan.retry)
    second = run_schedule(config, replay, seed=seed)
    assert first.crashes == second.crashes
    assert first.committed == second.committed
    assert [v.format() for v in first.violations] == [
        v.format() for v in second.violations
    ]


def test_shrinking_finds_minimal_failing_schedule():
    """With the planted bug, Hypothesis finds and shrinks a failing plan.

    The shrunken counterexample must be *minimal*: a single crash fault
    (the earliest the shrinker can reach), which is exactly the kind of
    schedule a human replays when debugging a real torture failure.
    """
    from hypothesis import find
    from hypothesis.errors import NoSuchExample

    config = TortureConfig(
        "bank", "DU", transactions=2, ops_per_txn=2, bug="skip-commit-force"
    )

    def violates(plan):
        return bool(run_schedule(config, plan, seed=0).violations)

    try:
        minimal = find(
            fault_plans(horizon=20, max_faults=3),
            violates,
            settings=settings(max_examples=200, deadline=None),
        )
    except NoSuchExample:  # pragma: no cover - the assertion message matters
        raise AssertionError(
            "the planted skip-commit-force bug was never detected"
        )
    # The harness injects a final clean crash, so with the bug planted
    # even the empty schedule loses commits; the shrinker must reach it.
    assert len(minimal.events) == 0
    assert violates(minimal)
