"""Property suite: compiled bitmask tables ≡ the interpreted relations.

For every registered ADT and both relations (NFC, NRBC), the compiled
:class:`~repro.analysis.compile_tables.CompiledConflict` must be an
exact, queryable replacement for the relation it compiles:

* cell-for-cell agreement with the
  :func:`~repro.analysis.tables.table_from_verdicts`/``PairMemo`` route
  over the full operation-class cross product (symmetry included);
* verdict-for-verdict agreement with the interpreted relation over the
  full ground-operation cross product — the refine-carrying ADTs
  (key-indexed KV, priority-ordered PQ) included, where a class-level
  mask hit must still be weakened exactly as the interpreter weakens it;
* batch equivalence: :func:`ground_pairs` equals
  :meth:`~repro.core.conflict.ConflictRelation.pairs`.
"""

import pytest

from repro.adts.registry import analysis_instance, compiled_tables, registered_kinds
from repro.analysis import PairMemo
from repro.analysis.compile_tables import (
    compile_conflict_classes,
    ground_pairs,
)

KINDS = registered_kinds()
RELATIONS = ("nfc", "nrbc")


def _marked(compiled_conflict, row_label, col_label) -> bool:
    """The compiled class-level verdict, treating absent labels as no-conflict.

    ``compile_classifier`` only assigns indices to labels appearing in
    the matrix; a label outside the table has an all-zero row/column by
    the ``on_unknown="grow"`` contract.
    """
    table = compiled_conflict.table
    index = table.index()
    if row_label not in index or col_label not in index:
        return False
    return table.conflicts_idx(index[row_label], index[col_label])


@pytest.mark.parametrize("relation", RELATIONS)
@pytest.mark.parametrize("kind", KINDS)
def test_compiled_table_matches_table_from_verdicts(kind, relation):
    """Bitmask cells == the table_from_verdicts route, full cross product."""
    adt = analysis_instance(kind)
    conflict = getattr(adt, relation + "_conflict")()
    classes = tuple(adt.operation_classes())
    memo = PairMemo()
    reference = compile_conflict_classes(
        conflict, classes, adt.classify, memo=memo
    )
    compiled = adt.compiled_conflict(relation)
    labels = [cls.label for cls in classes]
    for row in labels:
        for col in labels:
            assert _marked(compiled, row, col) == _marked(reference, row, col), (
                kind,
                relation,
                row,
                col,
            )
    # memoization actually engaged: the verdict pass touched every cell
    assert len(memo) >= len(labels)


@pytest.mark.parametrize("relation", RELATIONS)
@pytest.mark.parametrize("kind", KINDS)
def test_compiled_symmetry_matches_interpreted(kind, relation):
    """Symmetry agrees at both levels: bitmask table and ground relation."""
    adt = analysis_instance(kind)
    conflict = getattr(adt, relation + "_conflict")()
    compiled = adt.compiled_conflict(relation)
    reference = compile_conflict_classes(
        conflict, tuple(adt.operation_classes()), adt.classify
    )
    assert compiled.table.is_symmetric() == reference.table.is_symmetric()
    alphabet = adt.ground_alphabet()
    assert compiled.is_symmetric(alphabet) == conflict.is_symmetric(alphabet)


@pytest.mark.parametrize("relation", RELATIONS)
@pytest.mark.parametrize("kind", KINDS)
def test_compiled_verdicts_match_interpreted_ground(kind, relation):
    """conflicts(new, old) agrees pair-for-pair over the ground cross product."""
    adt = analysis_instance(kind)
    conflict = getattr(adt, relation + "_conflict")()
    compiled = adt.compiled_conflict(relation)
    alphabet = adt.ground_alphabet()
    for new in alphabet:
        for old in alphabet:
            assert compiled.conflicts(new, old) == conflict.conflicts(new, old), (
                kind,
                relation,
                new,
                old,
            )
    assert ground_pairs(conflict, alphabet) == conflict.pairs(alphabet)


@pytest.mark.parametrize("kind", KINDS)
def test_registry_compiled_tables_cover_all_classes(kind):
    """The registry artifact exposes both relations over the class alphabet."""
    tables = compiled_tables(kind)
    adt = analysis_instance(kind)
    assert tables.adt_name == adt.name
    assert tables.labels == tuple(
        str(cls.label) for cls in adt.operation_classes()
    )
    for compiled in (tables.nfc, tables.nrbc):
        # every ground operation classifies into the compiled universe
        for op in adt.ground_alphabet():
            compiled.class_index(op)
        assert len(compiled.labels) <= len(tables.labels)
