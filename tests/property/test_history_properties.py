"""Property-based tests of history invariants (paper Sections 2–3).

Includes the structural facts the paper's proofs lean on: precedes is a
strict partial order, Lemma 1 (``precedes(H|X) ⊆ precedes(H)``), and the
equivalence of a history with its serializations.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.atomicity import linear_extensions
from repro.core.history import History, equivalent, serial_history

from .strategies import OBJECTS, TXNS, well_formed_histories

SETTINGS = settings(max_examples=60, deadline=None)


@SETTINGS
@given(well_formed_histories())
def test_validation_accepts_generated_histories(h):
    History(h.events)  # re-validate from scratch


@SETTINGS
@given(well_formed_histories())
def test_opseq_counts_response_events(h):
    assert len(h.opseq()) == sum(1 for e in h if e.is_response)


@SETTINGS
@given(well_formed_histories())
def test_status_partition(h):
    assert not (h.committed() & h.aborted())
    assert h.active() == h.transactions() - h.committed() - h.aborted()


@SETTINGS
@given(well_formed_histories())
def test_projection_composition_commutes(h):
    for obj in OBJECTS:
        for txn in TXNS:
            a = h.project_objects(obj).project_transactions(txn)
            b = h.project_transactions(txn).project_objects(obj)
            assert a.events == b.events


@SETTINGS
@given(well_formed_histories())
def test_projection_is_subsequence(h):
    for txn in TXNS:
        proj = h.project_transactions(txn)
        it = iter(h.events)
        assert all(any(e == p for e in it) for p in proj.events)


@SETTINGS
@given(well_formed_histories())
def test_precedes_is_strict_partial_order(h):
    precedes = h.precedes()
    assert all(a != b for a, b in precedes)  # irreflexive
    for a, b in precedes:
        for c, d in precedes:
            if b == c:
                assert (a, d) in precedes  # transitive


@SETTINGS
@given(well_formed_histories())
def test_lemma_1_precedes_projection(h):
    """Lemma 1: precedes(H|X) ⊆ precedes(H)."""
    for obj in OBJECTS:
        assert h.project_objects(obj).precedes() <= h.precedes()


@SETTINGS
@given(well_formed_histories())
def test_permanent_only_committed(h):
    perm = h.permanent()
    assert perm.transactions() <= h.committed()
    assert perm.failure_free()


@SETTINGS
@given(well_formed_histories())
def test_serial_history_is_equivalent_and_serial(h):
    perm = h.permanent()
    txns = sorted(perm.transactions())
    s = serial_history(perm, txns)
    assert s.is_serial()
    assert equivalent(perm, s)


@SETTINGS
@given(well_formed_histories())
def test_commit_order_consistent_with_event_order(h):
    order = h.commit_order()
    assert set(order) == set(h.committed())
    positions = {}
    for i, e in enumerate(h):
        if e.is_commit and e.txn not in positions:
            positions[e.txn] = i
    assert list(order) == sorted(order, key=positions.__getitem__)


@SETTINGS
@given(well_formed_histories())
def test_linear_extensions_respect_precedes(h):
    txns = sorted(h.committed())
    precedes = {(a, b) for (a, b) in h.precedes() if a in txns and b in txns}
    count = 0
    for ext in linear_extensions(txns, precedes):
        count += 1
        pos = {t: i for i, t in enumerate(ext)}
        assert all(pos[a] < pos[b] for a, b in precedes)
        if count > 50:
            break
    if txns:
        assert count >= 1


@SETTINGS
@given(well_formed_histories(), st.randoms(use_true_random=False))
def test_equivalence_is_event_multiset_preserving(h, rnd):
    """Any serialization permutes whole-transaction blocks only."""
    perm = h.permanent()
    txns = sorted(perm.transactions())
    rnd.shuffle(txns)
    s = serial_history(perm, txns)
    assert sorted(map(str, s.events)) == sorted(map(str, perm.events))
