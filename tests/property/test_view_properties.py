"""Property tests relating the three recovery views on random histories.

Structural facts that hold for arbitrary well-formed histories:

* visibility: ``DU`` and ``SUIP`` show an active transaction exactly the
  committed operations plus its own, while ``UIP`` additionally shows
  every other non-aborted transaction's operations — so, as multisets,
  ``DU(H,A) = SUIP(H,A) ⊆ UIP(H,A)``;
* when no *other* transaction is active, the three views contain the
  same operations (only their order may differ);
* none of the views ever contains an aborted transaction's operations;
* a view's own-operations suffix preserves the transaction's execution
  order.
"""

from collections import Counter as Bag

from hypothesis import given, settings

from repro.core.views import DU, SUIP, UIP

from .strategies import well_formed_histories

SETTINGS = settings(max_examples=80, deadline=None)

PROBE = "PROBE"  # a transaction with no events: always active


def bag(ops):
    return Bag(ops)


@SETTINGS
@given(well_formed_histories())
def test_du_equals_suip_as_multisets(h):
    for txn in sorted(h.active() | {PROBE}):
        assert bag(DU(h, txn)) == bag(SUIP(h, txn))


@SETTINGS
@given(well_formed_histories())
def test_du_visibility_subset_of_uip(h):
    for txn in sorted(h.active() | {PROBE}):
        du_bag = bag(DU(h, txn))
        uip_bag = bag(UIP(h, txn))
        assert all(du_bag[op] <= uip_bag[op] for op in du_bag)


@SETTINGS
@given(well_formed_histories())
def test_views_agree_when_no_other_actives(h):
    """Project away other active transactions: then all views agree as bags."""
    for txn in sorted(h.active() | {PROBE}):
        visible = h.committed() | {txn}
        projected = h.project_transactions(visible)
        assert bag(UIP(projected, txn)) == bag(DU(projected, txn))
        assert bag(UIP(projected, txn)) == bag(SUIP(projected, txn))


@SETTINGS
@given(well_formed_histories())
def test_du_multiset_is_committed_plus_own(h):
    """DU/SUIP contain exactly the committed operations plus the
    transaction's own — in particular nothing from aborted or other
    active transactions."""
    committed_bag = Bag()
    for txn in h.committed():
        committed_bag.update(h.operations_of(txn))
    for txn in sorted(h.active() | {PROBE}):
        expected = committed_bag + Bag(h.operations_of(txn))
        assert bag(DU(h, txn)) == expected
        assert bag(SUIP(h, txn)) == expected


@SETTINGS
@given(well_formed_histories())
def test_own_suffix_order_preserved(h):
    """DU ends with the transaction's own ops, in execution order.

    (Not true of SUIP, which interleaves own operations with committed
    ones in global execution order — hypothesis found the
    counterexample when this test over-claimed.)
    """
    for txn in sorted(h.active()):
        own = h.operations_of(txn)
        if not own:
            continue
        ops = DU(h, txn)
        assert tuple(ops[-len(own):]) == own


@SETTINGS
@given(well_formed_histories())
def test_suip_preserves_execution_order(h):
    """SUIP is the visible transactions' ops in global execution order."""
    for txn in sorted(h.active() | {PROBE}):
        visible = h.committed() | {txn}
        assert SUIP(h, txn) == h.project_transactions(visible).opseq()


@SETTINGS
@given(well_formed_histories())
def test_uip_is_execution_order(h):
    """UIP is exactly the survivors' operations in execution order."""
    survivors = h.transactions() - h.aborted()
    expected = h.project_transactions(survivors).opseq()
    for txn in sorted(h.active() | {PROBE}):
        assert UIP(h, txn) == expected
