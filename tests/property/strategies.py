"""Hypothesis strategies for histories, operation sequences and scripts."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.adts import BankAccount
from repro.core.events import abort, commit, inv, invoke, respond
from repro.core.history import History, HistoryBuilder

OBJECTS = ("X", "Y")
TXNS = ("A", "B", "C", "D")
BA = BankAccount(domain=(1, 2))


@st.composite
def well_formed_histories(draw, max_events: int = 14) -> History:
    """Random well-formed histories over abstract operations a/b.

    Events are drawn one at a time; each draw picks among the moves that
    keep the history well formed, so generation never backtracks.
    """
    builder = HistoryBuilder()
    pending = {}
    finished = set()
    n = draw(st.integers(min_value=0, max_value=max_events))
    for _ in range(n):
        moves = []
        for txn in TXNS:
            if txn in finished:
                continue
            if txn in pending:
                obj = pending[txn]
                moves.append(("respond", txn, obj))
                moves.append(("abort", txn, obj))
            else:
                for obj in OBJECTS:
                    moves.append(("invoke", txn, obj))
                moves.append(("commit", txn, None))
                moves.append(("abort", txn, None))
        if not moves:
            break
        kind, txn, obj = draw(st.sampled_from(moves))
        if kind == "invoke":
            name = draw(st.sampled_from(["a", "b"]))
            builder.append(invoke(inv(name), obj, txn))
            pending[txn] = obj
        elif kind == "respond":
            response = draw(st.sampled_from(["ok", "no", 0, 1]))
            builder.append(respond(response, obj, txn))
            del pending[txn]
        elif kind == "commit":
            builder.append(commit(draw(st.sampled_from(OBJECTS)), txn))
            finished.add(txn)
        elif kind == "abort":
            target = obj if obj is not None else draw(st.sampled_from(OBJECTS))
            builder.append(abort(target, txn))
            pending.pop(txn, None)
            finished.add(txn)
    return builder.snapshot()


@st.composite
def ba_legal_sequences(draw, max_length: int = 5):
    """Random legal operation sequences of the bank account."""
    seq = []
    n = draw(st.integers(min_value=0, max_value=max_length))
    for _ in range(n):
        candidates = []
        for invocation in BA.invocation_alphabet():
            for response in BA.responses(tuple(seq), invocation):
                candidates.append(BA.operation(invocation, response))
        if not candidates:
            break
        seq.append(draw(st.sampled_from(sorted(candidates, key=str))))
    return tuple(seq)


def ba_ground_operations():
    """Strategy over the bank account's ground alphabet (small domain)."""
    return st.sampled_from(sorted(BA.ground_alphabet(), key=str))
