"""Property-based tests of the paper's Lemmas 3–8 on the bank account.

The lemmas are stated for arbitrary specifications; here they are
exercised over randomly sampled legal operation sequences of ``Spec(BA)``
with the bounded procedures (depth 3), which is exactly the regime the
library's checkers operate in.
"""

from hypothesis import given, settings

from repro.core.equieffective import equieffective, looks_like

from .strategies import BA, ba_ground_operations, ba_legal_sequences

ALPHABET = BA.invocation_alphabet()
DEPTH = 3
SETTINGS = settings(max_examples=40, deadline=None)


@SETTINGS
@given(ba_legal_sequences())
def test_lemma_3_looks_like_reflexive(alpha):
    assert looks_like(BA, alpha, alpha, ALPHABET, DEPTH)


@SETTINGS
@given(ba_legal_sequences(max_length=3), ba_legal_sequences(max_length=3))
def test_lemma_3_looks_like_transitive_on_witnesses(alpha, beta):
    """If α looks like β and β looks like α·ε variants, chain them: we
    check transitivity through a shared middle term (β)."""
    gamma = alpha  # try a triangle α ~ β ~ α
    if looks_like(BA, alpha, beta, ALPHABET, DEPTH) and looks_like(
        BA, beta, gamma, ALPHABET, DEPTH
    ):
        assert looks_like(BA, alpha, gamma, ALPHABET, DEPTH)


@SETTINGS
@given(ba_legal_sequences(max_length=3), ba_legal_sequences(max_length=3))
def test_lemma_4_equieffective_symmetric(alpha, beta):
    assert equieffective(BA, alpha, beta, ALPHABET, DEPTH) == equieffective(
        BA, beta, alpha, ALPHABET, DEPTH
    )


@SETTINGS
@given(ba_legal_sequences())
def test_lemma_4_equieffective_reflexive(alpha):
    assert equieffective(BA, alpha, alpha, ALPHABET, DEPTH)


@SETTINGS
@given(ba_legal_sequences(max_length=3), ba_legal_sequences(max_length=3))
def test_lemma_5_looks_like_preserves_membership(alpha, beta):
    """α ∈ Spec and α looks like β ⇒ β ∈ Spec (γ = ε instance)."""
    if looks_like(BA, alpha, beta, ALPHABET, DEPTH):
        assert BA.is_legal(alpha)  # strategies only produce legal α
        assert BA.is_legal(beta)


@SETTINGS
@given(
    ba_legal_sequences(max_length=2),
    ba_legal_sequences(max_length=2),
    ba_ground_operations(),
)
def test_lemma_6_looks_like_right_extension(alpha, beta, operation):
    """α looks like β ⇒ αγ looks like βγ, for single-operation γ."""
    if looks_like(BA, alpha, beta, ALPHABET, DEPTH):
        assert looks_like(
            BA, tuple(alpha) + (operation,), tuple(beta) + (operation,), ALPHABET, DEPTH - 1
        )


@SETTINGS
@given(
    ba_legal_sequences(max_length=2),
    ba_legal_sequences(max_length=2),
    ba_ground_operations(),
)
def test_lemma_7_equieffective_right_extension(alpha, beta, operation):
    if equieffective(BA, alpha, beta, ALPHABET, DEPTH):
        assert equieffective(
            BA,
            tuple(alpha) + (operation,),
            tuple(beta) + (operation,),
            ALPHABET,
            DEPTH - 1,
        )


@SETTINGS
@given(ba_ground_operations(), ba_ground_operations())
def test_lemma_8_fc_symmetric(p, q):
    """FC (and hence NFC) is symmetric, via the macro-state checker."""
    checker = _checker()
    assert checker.commute_forward(p, q) == checker.commute_forward(q, p)


@SETTINGS
@given(ba_legal_sequences())
def test_prefix_closure(seq):
    for i in range(len(seq) + 1):
        assert BA.is_legal(seq[:i])


@SETTINGS
@given(ba_legal_sequences())
def test_legality_iff_states_nonempty(seq):
    assert BA.is_legal(seq) == bool(BA.states_after(seq))


_CHECKER_CACHE = {}


def _checker():
    if "c" not in _CHECKER_CACHE:
        _CHECKER_CACHE["c"] = BA.build_checker(
            context_depth=3, future_depth=3
        )
    return _CHECKER_CACHE["c"]
