"""Property-based crash-recovery tests: durability at arbitrary crash points.

Random workloads run against a crashable system; a crash is injected at
a random event index.  Invariants:

* committed transactions' effects survive (restart state equals the
  abstract view of the post-crash history);
* the history spanning the crash remains dynamic atomic;
* a second crash immediately after restart changes nothing
  (idempotence).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adts import BankAccount, SemiQueue
from repro.core.atomicity import is_dynamic_atomic
from repro.core.events import inv
from repro.core.views import DU, UIP
from repro.runtime.durability import CrashableSystem, DurableObject

SETTINGS = settings(max_examples=30, deadline=None)


@st.composite
def ba_op_schedule(draw):
    """A random legal sequence of system calls plus a crash position."""
    n = draw(st.integers(min_value=1, max_value=12))
    calls = []
    active = set()
    counter = 0
    for _ in range(n):
        choices = ["begin"]
        if active:
            choices += ["op", "commit", "abort"]
        kind = draw(st.sampled_from(choices))
        if kind == "begin":
            counter += 1
            txn = "T%d" % counter
            active.add(txn)
            calls.append(("op", txn))
        else:
            txn = draw(st.sampled_from(sorted(active)))
            calls.append((kind, txn))
            if kind in ("commit", "abort"):
                active.discard(txn)
    crash_at = draw(st.integers(min_value=0, max_value=len(calls)))
    return calls, crash_at


def _apply_calls(system, calls, crash_at, draw_amount):
    killed = set()
    for i, (kind, txn) in enumerate(calls):
        if i == crash_at:
            killed |= system.crash()
        if system.status(txn) != "active" or txn in killed:
            continue
        if kind == "op":
            system.invoke(txn, "BA", inv("deposit", draw_amount(i)))
        elif kind == "commit":
            system.commit(txn)
        elif kind == "abort":
            system.abort(txn)
    if crash_at >= len(calls):
        system.crash()


@SETTINGS
@given(ba_op_schedule(), st.sampled_from(["UIP", "DU"]))
def test_restart_state_matches_abstract_view(schedule, recovery):
    calls, crash_at = schedule
    ba = BankAccount("BA")
    conflict = ba.nrbc_conflict() if recovery == "UIP" else ba.nfc_conflict()
    view = UIP if recovery == "UIP" else DU
    system = CrashableSystem([DurableObject(ba, conflict, recovery)])
    _apply_calls(system, calls, crash_at, lambda i: (i % 2) + 1)
    system.crash()  # final crash: all volatile state gone
    obj = system.objects["BA"]
    h = system.history()
    assert obj.recovery.macro("PROBE") == ba.states_after(view(h, "PROBE"))


@SETTINGS
@given(ba_op_schedule(), st.sampled_from(["UIP", "DU"]))
def test_history_across_crashes_dynamic_atomic(schedule, recovery):
    calls, crash_at = schedule
    ba = BankAccount("BA")
    conflict = ba.nrbc_conflict() if recovery == "UIP" else ba.nfc_conflict()
    system = CrashableSystem([DurableObject(ba, conflict, recovery)])
    _apply_calls(system, calls, crash_at, lambda i: (i % 2) + 1)
    assert is_dynamic_atomic(system.history(), ba)


@SETTINGS
@given(ba_op_schedule())
def test_double_crash_idempotent(schedule):
    calls, crash_at = schedule
    ba = BankAccount("BA")
    system = CrashableSystem([DurableObject(ba, ba.nrbc_conflict(), "UIP")])
    _apply_calls(system, calls, crash_at, lambda i: (i % 2) + 1)
    system.crash()
    obj = system.objects["BA"]
    state_once = obj.recovery.macro("PROBE")
    system.crash()
    assert obj.recovery.macro("PROBE") == state_once


@SETTINGS
@given(st.integers(min_value=0, max_value=6), st.sampled_from(["UIP", "DU"]))
def test_semiqueue_survives_crash(crash_at, recovery):
    sq = SemiQueue("SQ", domain=("a", "b"))
    conflict = sq.nrbc_conflict() if recovery == "UIP" else sq.nfc_conflict()
    system = CrashableSystem([DurableObject(sq, conflict, recovery)])
    steps = [("A", "a"), ("A", "b"), ("B", "a")]
    for i, (txn, item) in enumerate(steps):
        if i == crash_at:
            system.crash()
        if system.status(txn) == "active":
            system.invoke(txn, "SQ", inv("enq", item))
    for txn in ("A", "B"):
        if system.status(txn) == "active":
            system.commit(txn)
    system.crash()
    obj = system.objects["SQ"]
    h = system.history()
    view = UIP if recovery == "UIP" else DU
    assert obj.recovery.macro("PROBE") == sq.states_after(view(h, "PROBE"))
