"""Property-based end-to-end tests: the runtime is always dynamic atomic.

Random transaction scripts over random ADT configurations, run through
the concrete scheduler under each (recovery, matching-conflict) pair,
must always yield dynamic atomic histories — the executable content of
Theorems 9 and 10 composed with the runtime's equivalence to the
abstract automaton.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adts import BankAccount, SemiQueue, SetADT
from repro.core.atomicity import is_dynamic_atomic
from repro.core.events import inv
from repro.runtime import ManagedObject, TransactionSystem, run_scripts
from repro.runtime.scheduler import TransactionScript

SETTINGS = settings(max_examples=25, deadline=None)


@st.composite
def ba_scripts(draw):
    n_txns = draw(st.integers(min_value=2, max_value=4))
    scripts = []
    for i in range(n_txns):
        n_ops = draw(st.integers(min_value=1, max_value=3))
        steps = []
        for _ in range(n_ops):
            kind = draw(st.sampled_from(["deposit", "withdraw", "balance"]))
            if kind == "balance":
                steps.append(("BA", inv("balance")))
            else:
                steps.append(("BA", inv(kind, draw(st.sampled_from([1, 2])))))
        scripts.append(TransactionScript("T%d" % i, tuple(steps)))
    return scripts


@st.composite
def sq_scripts(draw):
    n_txns = draw(st.integers(min_value=2, max_value=4))
    scripts = []
    for i in range(n_txns):
        n_ops = draw(st.integers(min_value=1, max_value=3))
        steps = []
        for _ in range(n_ops):
            if draw(st.booleans()):
                steps.append(("SQ", inv("enq", draw(st.sampled_from(["a", "b"])))))
            else:
                steps.append(("SQ", inv("deq")))
        scripts.append(TransactionScript("T%d" % i, tuple(steps)))
    return scripts


@st.composite
def set_scripts(draw):
    n_txns = draw(st.integers(min_value=2, max_value=4))
    scripts = []
    for i in range(n_txns):
        n_ops = draw(st.integers(min_value=1, max_value=3))
        steps = [
            (
                "SET",
                inv(
                    draw(st.sampled_from(["insert", "delete", "member"])),
                    draw(st.sampled_from(["a", "b"])),
                ),
            )
            for _ in range(n_ops)
        ]
        scripts.append(TransactionScript("T%d" % i, tuple(steps)))
    return scripts


@SETTINGS
@given(ba_scripts(), st.integers(min_value=0, max_value=10))
def test_ba_uip_nrbc_dynamic_atomic(scripts, seed):
    ba = BankAccount("BA", domain=(1, 2))
    system = TransactionSystem([ManagedObject(ba, ba.nrbc_conflict(), "UIP")])
    run_scripts(system, scripts, seed=seed)
    assert is_dynamic_atomic(system.history(), ba)


@SETTINGS
@given(ba_scripts(), st.integers(min_value=0, max_value=10))
def test_ba_du_nfc_dynamic_atomic(scripts, seed):
    ba = BankAccount("BA", domain=(1, 2))
    system = TransactionSystem([ManagedObject(ba, ba.nfc_conflict(), "DU")])
    run_scripts(system, scripts, seed=seed)
    assert is_dynamic_atomic(system.history(), ba)


@SETTINGS
@given(sq_scripts(), st.integers(min_value=0, max_value=10))
def test_semiqueue_uip_nrbc_dynamic_atomic(scripts, seed):
    sq = SemiQueue("SQ", domain=("a", "b"))
    system = TransactionSystem([ManagedObject(sq, sq.nrbc_conflict(), "UIP")])
    run_scripts(system, scripts, seed=seed)
    assert is_dynamic_atomic(system.history(), sq)


@SETTINGS
@given(set_scripts(), st.integers(min_value=0, max_value=10))
def test_set_du_nfc_dynamic_atomic(scripts, seed):
    s = SetADT("SET", domain=("a", "b"))
    system = TransactionSystem([ManagedObject(s, s.nfc_conflict(), "DU")])
    run_scripts(system, scripts, seed=seed)
    assert is_dynamic_atomic(system.history(), s)


@SETTINGS
@given(ba_scripts(), st.integers(min_value=0, max_value=10))
def test_ba_2pl_dynamic_atomic_either_recovery(scripts, seed):
    from repro.runtime import read_write_conflict

    for recovery in ("UIP", "DU"):
        ba = BankAccount("BA", domain=(1, 2))
        system = TransactionSystem([ManagedObject(ba, read_write_conflict(ba), recovery)])
        run_scripts(system, scripts, seed=seed)
        assert is_dynamic_atomic(system.history(), ba)
