"""Property tests: incremental view cursors agree with from-scratch views.

Randomized schedules are driven through two object automata in lockstep:

* the *checked* automaton (``check_cursors=True``) — the incremental
  path, with every cursor answer cross-validated against the
  from-scratch ``View`` (a divergence raises
  :class:`~repro.core.view_cursors.ViewCursorMismatch` immediately), and
* the *oracle* automaton (``incremental=False``) — the original
  recompute-from-history path.

At every step, for every live transaction, both automata must report the
same enabled-response set; at the end both histories must be identical
and both ``accepts`` paths must admit them.  Schedules are abort-heavy
and include crash-style moves that mass-abort every live transaction,
because aborts are exactly where the cursors rebuild instead of append.

The matrix covers four ADTs (bank account, counter, FIFO queue, set) ×
the three recovery views × both conflict relations (NFC and NRBC).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adts import BankAccount, Counter, FifoQueue, SetADT
from repro.core.object_automaton import ObjectAutomaton
from repro.core.views import DU, SUIP, UIP

SETTINGS = settings(max_examples=25, deadline=None)

ADTS = {
    "bank": lambda: BankAccount(domain=(1, 2)),
    "counter": lambda: Counter(domain=(1, 2)),
    "queue": lambda: FifoQueue(domain=("a", "b")),
    "set": lambda: SetADT(domain=("a", "b")),
}
VIEWS = {"UIP": UIP, "DU": DU, "SUIP": SUIP}
CONFLICTS = ("NFC", "NRBC")
TXNS = ("A", "B", "C")

MATRIX = [
    (adt, view, conflict)
    for adt in sorted(ADTS)
    for view in sorted(VIEWS)
    for conflict in CONFLICTS
]


def build_pair(adt_name, view_name, conflict_name):
    spec = ADTS[adt_name]()
    view = VIEWS[view_name]
    conflict = (
        spec.nfc_conflict() if conflict_name == "NFC" else spec.nrbc_conflict()
    )
    checked = ObjectAutomaton(spec, view, conflict, check_cursors=True)
    oracle = ObjectAutomaton(spec, view, conflict, incremental=False)
    return spec, view, conflict, checked, oracle


def lockstep_drive(draw, spec, checked, oracle, *, max_steps=18):
    """Drive both automata through one drawn schedule, comparing each step."""
    alphabet = spec.invocation_alphabet()
    live = set(TXNS)
    pending = {}

    for _ in range(draw(st.integers(min_value=0, max_value=max_steps))):
        if not live:
            break
        for txn in sorted(live):
            assert checked.enabled_responses(txn) == oracle.enabled_responses(
                txn
            ), "enabled sets diverged for %s" % txn
        moves = []
        for txn in sorted(live):
            if txn in pending:
                for response in sorted(
                    checked.enabled_responses(txn), key=repr
                ):
                    moves.append(("respond", txn, response))
            else:
                for invocation in alphabet:
                    moves.append(("invoke", txn, invocation))
                moves.append(("commit", txn, None))
            # Abort-heavy on purpose: aborts are the cursor rebuild path.
            moves.append(("abort", txn, None))
        if len(live) > 1:
            moves.append(("crash", None, None))  # mass-abort every live txn
        if not moves:
            break
        kind, txn, payload = draw(st.sampled_from(moves))
        if kind == "invoke":
            checked.invoke(txn, payload)
            oracle.invoke(txn, payload)
            pending[txn] = payload
        elif kind == "respond":
            op_fast = checked.respond(txn, payload)
            op_slow = oracle.respond(txn, payload)
            assert op_fast == op_slow
            del pending[txn]
        elif kind == "commit":
            checked.commit(txn)
            oracle.commit(txn)
            live.discard(txn)
        elif kind == "abort":
            checked.abort(txn)
            oracle.abort(txn)
            pending.pop(txn, None)
            live.discard(txn)
        elif kind == "crash":
            for victim in sorted(live):
                checked.abort(victim)
                oracle.abort(victim)
            pending.clear()
            live.clear()


@pytest.mark.parametrize(
    "adt_name,view_name,conflict_name",
    MATRIX,
    ids=["-".join(combo) for combo in MATRIX],
)
@SETTINGS
@given(data=st.data())
def test_cursor_agrees_with_recompute(data, adt_name, view_name, conflict_name):
    spec, view, conflict, checked, oracle = build_pair(
        adt_name, view_name, conflict_name
    )
    lockstep_drive(data.draw, spec, checked, oracle)
    history = checked.history
    assert tuple(history) == tuple(oracle.history)
    assert ObjectAutomaton.accepts(
        spec, view, conflict, history, incremental=True
    )
    assert ObjectAutomaton.accepts(
        spec, view, conflict, history, incremental=False
    )


@pytest.mark.parametrize("view_name", sorted(VIEWS))
@SETTINGS
@given(data=st.data())
def test_clone_fork_is_independent(data, view_name):
    """Mutating an original after clone() never leaks into the twin.

    The twin's cursors must keep answering from the branch point: its
    enabled sets must equal those of a fresh recompute-path automaton
    replaying the twin's own history.
    """
    spec, view, conflict, checked, oracle = build_pair(
        "bank", view_name, "NFC"
    )
    lockstep_drive(data.draw, spec, checked, oracle, max_steps=10)
    twin = checked.clone()
    # Mutate the original: abort every live transaction (rebuild path).
    for txn in sorted(checked.active_transactions()):
        checked.abort(txn)
    # The twin still answers from the branch point, validated per query
    # by check mode and compared against a fresh recompute automaton.
    replay = ObjectAutomaton(spec, view, conflict, incremental=False)
    for event in twin.history:
        replay.step(event)
    for txn in TXNS:
        assert twin.enabled_responses(txn) == replay.enabled_responses(txn)
