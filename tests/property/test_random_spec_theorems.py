"""Fuzzing the theorems on randomly generated serial specifications.

The paper's results hold for *arbitrary* abstract data types.  These
tests generate random finite prefix-closed languages (random ADTs with
partial, possibly nondeterministic operations), derive NFC and NRBC
with the generic (context-explicit) checkers, and then:

* Theorem 9: randomized traces of ``I(X, Spec, UIP, NRBC)`` are always
  dynamic atomic;
* Theorem 10: randomized traces of ``I(X, Spec, DU, NFC)`` are always
  dynamic atomic;
* Lemma 8 (FC symmetric) holds on every generated spec;
* safety is monotone: adding conflicts (the total relation) never
  breaks dynamic atomicity.

This exercises the whole pipeline — spec → commutativity → conflicts →
automaton → checker — against adversarial structure no hand-written ADT
would have.
"""

import random
from itertools import product

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.atomicity import find_dynamic_atomicity_violation
from repro.core.commutativity import (
    find_backward_violation,
    find_forward_violation,
)
from repro.core.conflict import PairSetConflict, TotalConflict
from repro.core.events import inv, op
from repro.core.object_automaton import TransactionProgram, generate_trace
from repro.core.serial_spec import LanguageSpec
from repro.core.views import DU, UIP

SETTINGS = settings(max_examples=25, deadline=None)

#: The operation pool: three invocations; ``c`` has two possible results.
OP_POOL = (
    op("X", "a"),
    op("X", "b"),
    op("X", "c", response="hi"),
    op("X", "c", response="lo"),
)
INVOCATIONS = (inv("a"), inv("b"), inv("c"))


@st.composite
def random_specs(draw):
    """A random prefix-closed language over the operation pool."""
    n_seqs = draw(st.integers(min_value=1, max_value=8))
    sequences = []
    for _ in range(n_seqs):
        length = draw(st.integers(min_value=1, max_value=3))
        sequences.append(
            [draw(st.sampled_from(OP_POOL)) for _ in range(length)]
        )
    return LanguageSpec("X", sequences)


def derive_relations(spec: LanguageSpec):
    """Generic NFC / NRBC over the language's full alphabet."""
    contexts = sorted(spec.language, key=lambda s: (len(s), repr(s)))
    max_len = max((len(s) for s in spec.language), default=0)
    depth = max_len + 1
    alphabet = sorted(spec.alphabet(), key=repr)
    nfc, nrbc = set(), set()
    for p, q in product(alphabet, repeat=2):
        if find_forward_violation(spec, p, q, contexts, INVOCATIONS, depth):
            nfc.add((p, q))
        if find_backward_violation(spec, p, q, contexts, INVOCATIONS, depth):
            nrbc.add((p, q))
    return (
        PairSetConflict(nfc, alphabet=alphabet, name="NFC"),
        PairSetConflict(nrbc, alphabet=alphabet, name="NRBC"),
        alphabet,
    )


def random_programs(rng: random.Random, n_txns: int = 3, n_ops: int = 2):
    return [
        TransactionProgram(
            "T%d" % i,
            tuple(rng.choice(INVOCATIONS) for _ in range(n_ops)),
        )
        for i in range(n_txns)
    ]


@SETTINGS
@given(random_specs(), st.integers(min_value=0, max_value=3))
def test_theorem_9_uip_nrbc_safe_on_random_specs(spec, seed):
    _nfc, nrbc, _alphabet = derive_relations(spec)
    rng = random.Random(seed)
    for _ in range(4):
        trace = generate_trace(
            spec, UIP, nrbc, random_programs(rng), rng, abort_probability=0.2
        )
        assert find_dynamic_atomicity_violation(trace, spec) is None, str(trace)


@SETTINGS
@given(random_specs(), st.integers(min_value=0, max_value=3))
def test_theorem_10_du_nfc_safe_on_random_specs(spec, seed):
    nfc, _nrbc, _alphabet = derive_relations(spec)
    rng = random.Random(seed)
    for _ in range(4):
        trace = generate_trace(
            spec, DU, nfc, random_programs(rng), rng, abort_probability=0.2
        )
        assert find_dynamic_atomicity_violation(trace, spec) is None, str(trace)


@SETTINGS
@given(random_specs())
def test_lemma_8_fc_symmetric_on_random_specs(spec):
    contexts = sorted(spec.language, key=lambda s: (len(s), repr(s)))
    depth = max((len(s) for s in spec.language), default=0) + 1
    alphabet = sorted(spec.alphabet(), key=repr)
    for p, q in product(alphabet, repeat=2):
        forward = find_forward_violation(spec, p, q, contexts, INVOCATIONS, depth)
        backward = find_forward_violation(spec, q, p, contexts, INVOCATIONS, depth)
        assert (forward is None) == (backward is None), (str(p), str(q))


@SETTINGS
@given(random_specs(), st.integers(min_value=0, max_value=3))
def test_total_conflict_safe_with_both_views(spec, seed):
    """Exclusive locking is always safe — with either recovery method."""
    rng = random.Random(seed)
    for view in (UIP, DU):
        trace = generate_trace(
            spec,
            view,
            TotalConflict(),
            random_programs(rng),
            rng,
            abort_probability=0.2,
        )
        assert find_dynamic_atomicity_violation(trace, spec) is None


@SETTINGS
@given(random_specs())
def test_language_specs_prefix_closed(spec):
    from repro.core.serial_spec import is_prefix_closed

    assert is_prefix_closed(spec.language)
