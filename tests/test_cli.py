"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.core import serde
from repro.experiments.examples import (
    section_3_3_history,
    section_3_4_perturbed_history,
)


class TestAdtsCommand:
    def test_lists_all(self, capsys):
        assert main(["adts"]) == 0
        out = capsys.readouterr().out
        for kind in ("bank", "semiqueue", "escrow", "register"):
            assert kind in out


class TestTablesCommand:
    def test_bank_tables(self, capsys):
        assert main(["tables", "bank"]) == 0
        out = capsys.readouterr().out
        assert "Forward Commutativity Relation" in out
        assert "Right Backward Commutativity Relation" in out
        assert "NFC-only conflicts" in out

    def test_markdown(self, capsys):
        assert main(["tables", "register", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert "| |" in out

    def test_unknown_adt(self):
        with pytest.raises(SystemExit):
            main(["tables", "btree"])

    def test_custom_name(self, capsys):
        assert main(["tables", "counter", "--name", "HITS"]) == 0
        assert "HITS" in capsys.readouterr().out


class TestFiguresCommand:
    def test_figures_match(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6-1 matches the paper: True" in out
        assert "Figure 6-2 matches the paper: True" in out


class TestCounterexampleCommand:
    def test_uip(self, capsys):
        assert main(["counterexample", "uip"]) == 0
        out = capsys.readouterr().out
        assert "missing conflict pair" in out
        assert "not serializable" in out

    def test_du(self, capsys):
        assert main(["counterexample", "du"]) == 0
        assert "missing conflict pair" in capsys.readouterr().out


class TestAuditCommand:
    def test_clean_history(self, tmp_path, capsys):
        path = str(tmp_path / "h.json")
        serde.dump(section_3_3_history(), path)
        assert main(["audit", path, "--adt", "bank"]) == 0
        out = capsys.readouterr().out
        assert "atomic       : yes (order A-B-C)" in out
        assert "dynamic atomic: yes" in out

    def test_violating_history_exit_code(self, tmp_path, capsys):
        path = str(tmp_path / "h.json")
        serde.dump(section_3_4_perturbed_history(), path)
        assert main(["audit", path, "--adt", "bank"]) == 1
        out = capsys.readouterr().out
        assert "dynamic atomic: NO" in out

    def test_per_object_bindings(self, tmp_path, capsys):
        path = str(tmp_path / "h.json")
        serde.dump(section_3_3_history(), path)
        assert main(["audit", path, "--object", "BA=bank"]) == 0

    def test_missing_spec(self, tmp_path):
        path = str(tmp_path / "h.json")
        serde.dump(section_3_3_history(), path)
        with pytest.raises(SystemExit):
            main(["audit", path])

    def test_bad_binding(self, tmp_path):
        path = str(tmp_path / "h.json")
        serde.dump(section_3_3_history(), path)
        with pytest.raises(SystemExit):
            main(["audit", path, "--object", "nonsense"])


class TestCompareCommand:
    def test_semiqueue_small(self, capsys):
        assert (
            main(
                [
                    "compare",
                    "semiqueue",
                    "--seeds",
                    "2",
                    "--transactions",
                    "4",
                    "--ops",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "UIP+NRBC" in out and "thruput" in out

    def test_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["compare", "blockchain"])
