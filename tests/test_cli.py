"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.core import serde
from repro.experiments.examples import (
    section_3_3_history,
    section_3_4_perturbed_history,
)


class TestAdtsCommand:
    def test_lists_all(self, capsys):
        assert main(["adts"]) == 0
        out = capsys.readouterr().out
        for kind in ("bank", "semiqueue", "escrow", "register"):
            assert kind in out


class TestTablesCommand:
    def test_bank_tables(self, capsys):
        assert main(["tables", "bank"]) == 0
        out = capsys.readouterr().out
        assert "Forward Commutativity Relation" in out
        assert "Right Backward Commutativity Relation" in out
        assert "NFC-only conflicts" in out

    def test_markdown(self, capsys):
        assert main(["tables", "register", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert "| |" in out

    def test_unknown_adt(self):
        with pytest.raises(SystemExit):
            main(["tables", "btree"])

    def test_custom_name(self, capsys):
        assert main(["tables", "counter", "--name", "HITS"]) == 0
        assert "HITS" in capsys.readouterr().out


class TestFiguresCommand:
    def test_figures_match(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6-1 matches the paper: True" in out
        assert "Figure 6-2 matches the paper: True" in out


class TestCounterexampleCommand:
    def test_uip(self, capsys):
        assert main(["counterexample", "uip"]) == 0
        out = capsys.readouterr().out
        assert "missing conflict pair" in out
        assert "not serializable" in out

    def test_du(self, capsys):
        assert main(["counterexample", "du"]) == 0
        assert "missing conflict pair" in capsys.readouterr().out


class TestAuditCommand:
    def test_clean_history(self, tmp_path, capsys):
        path = str(tmp_path / "h.json")
        serde.dump(section_3_3_history(), path)
        assert main(["audit", path, "--adt", "bank"]) == 0
        out = capsys.readouterr().out
        assert "atomic       : yes (order A-B-C)" in out
        assert "dynamic atomic: yes" in out

    def test_violating_history_exit_code(self, tmp_path, capsys):
        path = str(tmp_path / "h.json")
        serde.dump(section_3_4_perturbed_history(), path)
        assert main(["audit", path, "--adt", "bank"]) == 1
        out = capsys.readouterr().out
        assert "dynamic atomic: NO" in out

    def test_per_object_bindings(self, tmp_path, capsys):
        path = str(tmp_path / "h.json")
        serde.dump(section_3_3_history(), path)
        assert main(["audit", path, "--object", "BA=bank"]) == 0

    def test_missing_spec(self, tmp_path):
        path = str(tmp_path / "h.json")
        serde.dump(section_3_3_history(), path)
        with pytest.raises(SystemExit):
            main(["audit", path])

    def test_bad_binding(self, tmp_path):
        path = str(tmp_path / "h.json")
        serde.dump(section_3_3_history(), path)
        with pytest.raises(SystemExit):
            main(["audit", path, "--object", "nonsense"])


class TestCompareCommand:
    def test_semiqueue_small(self, capsys):
        assert (
            main(
                [
                    "compare",
                    "semiqueue",
                    "--seeds",
                    "2",
                    "--transactions",
                    "4",
                    "--ops",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "UIP+NRBC" in out and "thruput" in out

    def test_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["compare", "blockchain"])

    def test_rejects_zero_seeds(self, capsys):
        with pytest.raises(SystemExit, match="--seeds must be >= 1"):
            main(["compare", "hotspot", "--seeds", "0"])

    def test_rejects_negative_opening(self):
        with pytest.raises(SystemExit, match="--opening must be >= 0"):
            main(["compare", "hotspot", "--opening", "-5"])

    def test_read_mix_adds_ro_columns(self, capsys):
        assert (
            main(
                [
                    "compare", "hotspot",
                    "--seeds", "2",
                    "--transactions", "4",
                    "--ops", "2",
                    "--read-mix", "0.5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "ro-commit" in out and "ro-reads" in out

    def test_read_mix_rejects_out_of_range(self):
        with pytest.raises(SystemExit, match="--read-mix must be in"):
            main(["compare", "hotspot", "--read-mix", "2.0"])

    def test_read_mix_rejects_observerless_workloads(self):
        with pytest.raises(SystemExit, match="no read-only observer"):
            main(["compare", "fifo", "--read-mix", "0.5", "--seeds", "1"])


class TestRunCommand:
    def test_run_prints_metrics(self, capsys):
        assert main(["run", "bank", "--transactions", "4", "--ops", "2"]) == 0
        out = capsys.readouterr().out
        assert "committed" in out and "forces" in out

    def test_rejects_zero_transactions(self):
        with pytest.raises(SystemExit, match="--transactions must be >= 1"):
            main(["run", "bank", "--transactions", "0"])

    def test_rejects_negative_ops(self):
        with pytest.raises(SystemExit, match="--ops must be >= 1"):
            main(["run", "bank", "--ops", "-1"])

    def test_rejects_bad_group_commit(self):
        with pytest.raises(SystemExit, match="--group-commit must be >= 1"):
            main(["run", "bank", "--group-commit", "0"])

    def test_trace_out_writes_jsonl(self, tmp_path, capsys):
        from repro.runtime.trace import load_jsonl, reconcile

        path = str(tmp_path / "t.jsonl")
        assert (
            main(
                [
                    "run",
                    "bank",
                    "--transactions",
                    "4",
                    "--ops",
                    "2",
                    "--group-commit",
                    "4",
                    "--trace-out",
                    path,
                ]
            )
            == 0
        )
        assert "trace" in capsys.readouterr().out
        events = load_jsonl(path)  # schema-validates every line
        results = reconcile(events)
        assert len(results) == 1 and results[0].ok


    def test_run_with_sites_reports_per_site_accounting(self, capsys):
        argv = [
            "run", "counter",
            "--sites", "2",
            "--site-crash", "1@5-15",
            "--transactions", "6",
            "--ops", "2",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "counter/DU/x2" in out
        assert "site 0" in out and "site 1" in out
        assert "requalified" in out

    def test_run_sites_rejects_workers(self):
        with pytest.raises(SystemExit, match="lockstep"):
            main(["run", "counter", "--sites", "2", "--workers", "2"])


class TestTortureValidation:
    def test_rejects_zero_schedules(self):
        with pytest.raises(SystemExit, match="--schedules must be >= 1"):
            main(["torture", "--schedules", "0"])

    def test_rejects_negative_retries(self):
        with pytest.raises(SystemExit, match="--max-retries must be >= 0"):
            main(["torture", "--max-retries", "-1"])

    def test_rejects_zero_max_faults(self):
        with pytest.raises(SystemExit, match="--max-faults must be >= 1"):
            main(["torture", "--max-faults", "0"])

    def test_rejects_negative_checkpoint_every(self):
        with pytest.raises(SystemExit, match="--checkpoint-every must be >= 0"):
            main(["torture", "--checkpoint-every", "-1"])


class TestTraceReportCommand:
    def _write_trace(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        assert (
            main(
                [
                    "torture",
                    "--adt",
                    "bank",
                    "--recovery",
                    "du",
                    "--schedules",
                    "2",
                    "--trace-out",
                    path,
                ]
            )
            == 0
        )
        return path

    def test_torture_trace_reconciles(self, tmp_path, capsys):
        path = self._write_trace(tmp_path)
        capsys.readouterr()
        assert main(["trace-report", path, "--strict"]) == 0
        out = capsys.readouterr().out
        assert "reconcile" in out and "MISMATCH" not in out

    def test_torture_read_mix_labels_and_passes(self, capsys):
        assert (
            main(
                [
                    "torture",
                    "--adt",
                    "bank",
                    "--recovery",
                    "du",
                    "--schedules",
                    "4",
                    "--read-mix",
                    "0.5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "bank/DU/ro0.5" in out
        assert "all invariants held" in out

    def test_torture_read_mix_rejects_out_of_range(self):
        with pytest.raises(SystemExit, match="--read-mix must be in"):
            main(["torture", "--adt", "bank", "--read-mix", "1.5"])

    def test_torture_read_mix_skips_observerless_adts(self, capsys):
        # fifo has no read-only observer invocations; the torture matrix
        # just runs it without readers instead of rejecting the flag.
        assert (
            main(
                [
                    "torture",
                    "--adt",
                    "fifo",
                    "--recovery",
                    "du",
                    "--schedules",
                    "2",
                    "--read-mix",
                    "0.5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "fifo/DU/ro0.5" in out

    def test_rejects_malformed_trace(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(SystemExit, match="invalid trace"):
            main(["trace-report", str(path)])

    def test_mismatch_exits_nonzero(self, tmp_path, capsys):
        import json

        path = tmp_path / "t.jsonl"
        events = [
            {"kind": "run-start", "tick": 0, "label": "x"},
            {
                "kind": "run-end",
                "tick": 0,
                "label": "x",
                "metrics": {"committed": 3},
            },
        ]
        path.write_text("".join(json.dumps(e) + "\n" for e in events))
        assert main(["trace-report", str(path)]) == 1
        assert "MISMATCH" in capsys.readouterr().out

    def test_strict_rejects_empty_trace(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["trace-report", str(path), "--strict"]) == 1
