"""Tests for the CLI synthesize command."""

import pytest

from repro.cli import main


class TestSynthesizeCommand:
    def test_counter_uip(self, capsys):
        assert main(["synthesize", "uip", "--adt", "counter", "--depth", "2"]) == 0
        out = capsys.readouterr().out
        assert "required conflicts for view UIP" in out
        assert "read" in out and "increment" in out

    def test_bank_suip(self, capsys):
        assert main(["synthesize", "suip", "--adt", "bank", "--depth", "2"]) == 0
        out = capsys.readouterr().out
        assert "required conflicts for view SUIP" in out

    def test_unknown_view(self):
        with pytest.raises(SystemExit):
            main(["synthesize", "mvcc", "--adt", "bank"])

    def test_register_du(self, capsys):
        assert main(["synthesize", "du", "--adt", "register"]) == 0
        out = capsys.readouterr().out
        # Register requires the rw matrix; at least write/write appears.
        assert "write" in out
