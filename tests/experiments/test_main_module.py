"""Smoke test for the one-shot experiments regeneration entry point."""

from repro.experiments.__main__ import main


def test_main_regenerates_everything(capsys):
    assert main() == 0
    out = capsys.readouterr().out
    assert "Figure 6-1 matches the paper: True" in out
    assert "Figure 6-2 matches the paper: True" in out
    assert "§3.4 perturbed: atomic True / dynamic atomic False" in out
    assert "EXP-C1" in out and "EXP-C2" in out and "EXP-C3" in out
    assert "UIP+NRBC" in out
    # Every ADT appears in the incomparability section.
    for name in ("BA", "SQ", "PQ", "REG", "SET", "KV", "ST", "ESC", "CTR"):
        assert "ADT %s:" % name in out
