"""Tests for the experiment harness (small-scale smoke + shape checks)."""

import pytest

from repro.adts import BankAccount, SemiQueue
from repro.experiments import (
    compare,
    exp_c3_symmetry,
    figure_6_1,
    figure_6_2,
    incomparability_report,
    render_experiment,
    standard_configurations,
)
from repro.runtime import format_summary_table, hotspot_banking


class TestConfigurations:
    def test_standard_set(self):
        configs = standard_configurations()
        labels = [c.label for c in configs]
        assert labels == ["UIP+NRBC", "DU+NFC", "UIP+2PL-rw", "UIP+sym(NRBC)"]

    def test_without_symmetric(self):
        assert len(standard_configurations(extra_symmetric=False)) == 3


class TestCompare:
    def test_compare_returns_summaries(self):
        summaries = compare(
            lambda: BankAccount("BA", opening=50),
            lambda rng: hotspot_banking(rng, transactions=4, ops_per_txn=2),
            seeds=(0, 1),
        )
        assert len(summaries) == 4
        assert all(s.runs == 2 for s in summaries)

    def test_withdraw_heavy_favors_uip_nrbc(self):
        """EXP-C1's headline cell at small scale: on a funded account
        with only withdrawals, UIP+NRBC beats DU+NFC and 2PL."""
        summaries = compare(
            lambda: BankAccount("BA", opening=100),
            lambda rng: hotspot_banking(
                rng,
                transactions=6,
                ops_per_txn=3,
                deposit_weight=0.0,
                withdraw_weight=1.0,
                balance_weight=0.0,
            ),
            seeds=tuple(range(6)),
        )
        by_label = {s.label: s for s in summaries}
        assert (
            by_label["UIP+NRBC"].mean_throughput
            > by_label["DU+NFC"].mean_throughput
        )
        assert (
            by_label["UIP+NRBC"].mean_throughput
            > by_label["UIP+2PL-rw"].mean_throughput
        )

    def test_semiqueue_favors_uip_nrbc(self):
        from repro.runtime import producer_consumer

        summaries = compare(
            lambda: SemiQueue("Q"),
            lambda rng: producer_consumer(
                rng, obj="Q", producers=3, consumers=3, ops_per_txn=2
            ),
            seeds=tuple(range(4)),
        )
        by_label = {s.label: s for s in summaries}
        assert (
            by_label["UIP+NRBC"].mean_throughput
            >= by_label["UIP+2PL-rw"].mean_throughput
        )

    def test_render_experiment(self):
        summaries = compare(
            lambda: BankAccount("BA", opening=10),
            lambda rng: hotspot_banking(rng, transactions=3, ops_per_txn=2),
            seeds=(0,),
        )
        text = render_experiment({"case": summaries})
        assert "== case ==" in text
        assert "UIP+NRBC" in text


class TestSymmetryAblation:
    def test_asymmetric_at_least_as_good(self):
        summaries = exp_c3_symmetry(transactions=6, ops_per_txn=2, seeds=(0, 1, 2, 3))
        by_label = {s.label: s for s in summaries}
        assert (
            by_label["UIP+NRBC"].mean_throughput
            >= by_label["UIP+sym(NRBC)"].mean_throughput
        )


class TestFigureHarness:
    def test_figures_match(self):
        from repro.experiments import expected_figure_6_1, expected_figure_6_2

        assert figure_6_1().same_marks(expected_figure_6_1())
        assert figure_6_2().same_marks(expected_figure_6_2())

    def test_incomparability_harness(self):
        report = incomparability_report(BankAccount())
        assert report.incomparable
        assert "BA" in report.render()
