"""Unit tests for the priority queue and its argument-refined conflicts."""

import pytest

from repro.adts import PriorityQueue
from repro.adts.priority_queue import (
    EXTRACT_EMPTY,
    EXTRACT_OK,
    INSERT,
    PQ_NFC_MARKS,
    PQ_NRBC_MARKS,
)
from repro.core.events import inv


@pytest.fixture
def pq():
    return PriorityQueue(domain=(1, 2, 3))


class TestSpec:
    def test_initially_empty(self, pq):
        assert pq.responses((), inv("extract_min")) == {"empty"}

    def test_min_extraction(self, pq):
        seq = (pq.insert(3), pq.insert(1), pq.insert(2))
        assert pq.responses(seq, inv("extract_min")) == {1}

    def test_extraction_ordering(self, pq):
        seq = (pq.insert(2), pq.insert(1), pq.extract_min(1))
        assert pq.responses(seq, inv("extract_min")) == {2}

    def test_wrong_extraction_illegal(self, pq):
        assert not pq.is_legal((pq.insert(2), pq.extract_min(1)))

    def test_duplicates_are_a_multiset(self, pq):
        seq = (pq.insert(1), pq.insert(1), pq.extract_min(1))
        assert pq.responses(seq, inv("extract_min")) == {1}

    def test_insertion_order_invisible(self, pq):
        a = pq.states_after((pq.insert(2), pq.insert(1)))
        b = pq.states_after((pq.insert(1), pq.insert(2)))
        assert a == b

    def test_classify(self, pq):
        assert pq.classify(pq.insert(1)) == INSERT
        assert pq.classify(pq.extract_min(1)) == EXTRACT_OK
        assert pq.classify(pq.extract_empty()) == EXTRACT_EMPTY


class TestTablesCrossCheck:
    def test_class_tables_match(self, pq):
        checker = pq.build_checker()
        classes = pq.operation_classes()
        assert checker.forward_table(classes).marks == frozenset(PQ_NFC_MARKS)
        assert checker.backward_table(classes).marks == frozenset(PQ_NRBC_MARKS)

    def test_inserts_commute_both_senses(self, pq):
        checker = pq.build_checker()
        assert checker.commute_forward(pq.insert(1), pq.insert(2))
        assert checker.right_commutes_backward(pq.insert(1), pq.insert(2))


class TestArgumentRefinement:
    """The refined relations agree with the mechanical checker per ground pair."""

    @pytest.mark.parametrize(
        "new, old, expected",
        [
            ("insert-1", "extract-2", True),  # x < y changes the minimum
            ("insert-2", "extract-2", False),  # x = y: push-back is fine
            ("insert-3", "extract-2", False),  # x > y irrelevant
            ("extract-2", "insert-2", True),  # may extract the new element
            ("extract-2", "insert-3", False),
            ("extract-3", "extract-2", True),  # z ≤ y
            ("extract-2", "extract-3", False),
        ],
    )
    def test_nrbc_refinement(self, pq, new, old, expected):
        def build(tag):
            kind, value = tag.split("-")
            return pq.insert(int(value)) if kind == "insert" else pq.extract_min(int(value))

        new_op, old_op = build(new), build(old)
        assert pq.nrbc_conflict().conflicts(new_op, old_op) == expected
        checker = pq.build_checker()
        assert (checker.rbc_violation(new_op, old_op) is not None) == expected

    @pytest.mark.parametrize(
        "x, y, expected",
        [(1, 2, True), (2, 2, False), (3, 2, False)],
    )
    def test_nfc_refinement(self, pq, x, y, expected):
        new_op, old_op = pq.insert(x), pq.extract_min(y)
        assert pq.nfc_conflict().conflicts(new_op, old_op) == expected
        checker = pq.build_checker()
        assert (checker.fc_violation(new_op, old_op) is not None) == expected

    def test_refinement_symmetric_for_nfc(self, pq):
        assert pq.nfc_conflict().conflicts(pq.extract_min(2), pq.insert(1))
        assert not pq.nfc_conflict().conflicts(pq.extract_min(2), pq.insert(3))


class TestRuntimeHooks:
    def test_apply(self, pq):
        state = pq.apply(pq.apply((), pq.insert(2)), pq.insert(1))
        assert state == (1, 2)
        assert pq.apply(state, pq.extract_min(1)) == (2,)

    def test_apply_rejects_wrong_min(self, pq):
        with pytest.raises(ValueError):
            pq.apply((1, 2), pq.extract_min(2))

    def test_undo_round_trip(self, pq):
        state = (1, 2)
        for operation in (pq.insert(3), pq.extract_min(1)):
            assert pq.undo(pq.apply(state, operation), operation) == state

    def test_supports_logical_undo(self, pq):
        assert pq.supports_logical_undo

    def test_end_to_end_dynamic_atomic(self, pq):
        import random

        from repro.core.atomicity import is_dynamic_atomic
        from repro.runtime import ManagedObject, TransactionSystem, run_scripts
        from repro.runtime.scheduler import TransactionScript

        for seed in range(4):
            rng = random.Random(seed)
            adt = PriorityQueue("PQ", domain=(1, 2, 3))
            system = TransactionSystem(
                [ManagedObject(adt, adt.nrbc_conflict(), "UIP")]
            )
            scripts = []
            for i in range(5):
                steps = []
                for _ in range(2):
                    if rng.random() < 0.6:
                        steps.append(("PQ", inv("insert", rng.choice([1, 2, 3]))))
                    else:
                        steps.append(("PQ", inv("extract_min")))
                scripts.append(TransactionScript("T%d" % i, tuple(steps)))
            run_scripts(system, scripts, seed=seed)
            assert is_dynamic_atomic(system.history(), adt)
