"""Tests for product ADTs: composition laws and granularity behavior."""

import random

import pytest

from repro.adts import BankAccount, Counter, Register, SetADT
from repro.adts.product import ProductADT
from repro.core.atomicity import is_dynamic_atomic
from repro.core.events import Invocation, inv


@pytest.fixture
def record():
    return ProductADT(
        "REC",
        {
            "savings": BankAccount("savings", domain=(1, 2)),
            "flags": SetADT("flags", domain=("a",)),
        },
    )


class TestSpec:
    def test_initial_state_tuple(self, record):
        # Components in sorted order: flags, savings.
        assert record.initial_state() == (frozenset(), 0)

    def test_component_transition(self, record):
        seq = (record.operation(inv("savings.deposit", 2), "ok"),)
        assert record.states_after(seq) == frozenset({(frozenset(), 2)})

    def test_components_independent(self, record):
        seq = (
            record.operation(inv("savings.deposit", 2), "ok"),
            record.operation(inv("flags.insert", "a"), "ok"),
        )
        assert record.states_after(seq) == frozenset(
            {(frozenset({"a"}), 2)}
        )

    def test_unknown_component_disabled(self, record):
        assert record.responses((), inv("checking.deposit", 1)) == frozenset()

    def test_unprefixed_invocation_disabled(self, record):
        assert record.responses((), inv("deposit", 1)) == frozenset()

    def test_legality_decomposes(self, record):
        ok = (
            record.operation(inv("savings.deposit", 1), "ok"),
            record.operation(inv("savings.withdraw", 1), "ok"),
            record.operation(inv("flags.member", "a"), False),
        )
        assert record.is_legal(ok)
        bad = (record.operation(inv("savings.withdraw", 1), "ok"),)
        assert not record.is_legal(bad)

    def test_empty_product_rejected(self):
        with pytest.raises(ValueError):
            ProductADT("EMPTY", {})


class TestClassification:
    def test_classify_prefixed(self, record):
        operation = record.operation(inv("savings.deposit", 1), "ok")
        assert record.classify(operation) == "savings.deposit(i)/ok"

    def test_classify_foreign_raises(self, record):
        from repro.core.events import op

        with pytest.raises(ValueError):
            record.classify(op("REC", "zap"))

    def test_classes_cover_all_components(self, record):
        labels = {c.label for c in record.operation_classes()}
        assert any(label.startswith("savings.") for label in labels)
        assert any(label.startswith("flags.") for label in labels)

    def test_invocation_alphabet_prefixed(self, record):
        names = {i.name for i in record.invocation_alphabet()}
        assert "savings.deposit" in names
        assert "flags.member" in names


class TestComposedConflicts:
    def test_same_component_inherits(self, record):
        nfc = record.nfc_conflict()
        w1 = record.operation(inv("savings.withdraw", 1), "ok")
        w2 = record.operation(inv("savings.withdraw", 2), "ok")
        assert nfc.conflicts(w1, w2)

    def test_cross_component_free(self, record):
        nfc = record.nfc_conflict()
        nrbc = record.nrbc_conflict()
        w = record.operation(inv("savings.withdraw", 1), "ok")
        ins = record.operation(inv("flags.insert", "a"), "ok")
        assert not nfc.conflicts(w, ins)
        assert not nrbc.conflicts(w, ins)
        assert not nrbc.conflicts(ins, w)

    def test_checker_confirms_cross_component_commuting(self, record):
        checker = record.build_checker(context_depth=3, future_depth=3)
        w = record.operation(inv("savings.withdraw", 1), "ok")
        ins = record.operation(inv("flags.insert", "a"), "ok")
        assert checker.commute_forward(w, ins)
        assert checker.right_commutes_backward(w, ins)

    def test_checker_confirms_same_component_conflicts(self, record):
        checker = record.build_checker(context_depth=3, future_depth=3)
        w1 = record.operation(inv("savings.withdraw", 1), "ok")
        w2 = record.operation(inv("savings.withdraw", 2), "ok")
        assert not checker.commute_forward(w1, w2)

    def test_composed_tables_match_mechanical(self):
        """Full table cross-check on a small all-finite product."""
        product = ProductADT(
            "P",
            {
                "r": Register("r", domain=("u", "v"), initial="u"),
                "c": Counter("c", domain=(1,)),
            },
        )
        checker = product.build_checker(context_depth=3, future_depth=3)
        classes = product.operation_classes()
        fc = checker.forward_table(classes)
        nfc = product.nfc_conflict()
        for row in classes:
            for col in classes:
                expected = fc.marked(row.label, col.label)
                got = any(
                    nfc.conflicts(a, b)
                    for a in row.instances
                    for b in col.instances
                )
                assert got == expected, (row.label, col.label)


class TestRuntimeHooks:
    def test_apply_and_undo(self, record):
        state = record.initial_state()
        operation = record.operation(inv("savings.deposit", 2), "ok")
        after = record.apply(state, operation)
        assert after == (frozenset(), 2)

    def test_logical_undo_requires_all_components(self, record):
        # SetADT does not support logical undo, so the record must not.
        assert not record.supports_logical_undo
        both_logical = ProductADT(
            "P2",
            {
                "a": BankAccount("a", domain=(1,)),
                "b": Counter("b", domain=(1,)),
            },
        )
        assert both_logical.supports_logical_undo
        state = both_logical.initial_state()
        operation = both_logical.operation(inv("a.deposit", 1), "ok")
        after = both_logical.apply(state, operation)
        assert both_logical.undo(after, operation) == state

    def test_end_to_end_dynamic_atomic(self, record):
        from repro.runtime import ManagedObject, TransactionSystem, run_scripts
        from repro.runtime.scheduler import TransactionScript

        for seed in range(4):
            rng = random.Random(seed)
            adt = ProductADT(
                "REC",
                {
                    "savings": BankAccount("savings", domain=(1, 2), opening=5),
                    "flags": SetADT("flags", domain=("a",)),
                },
            )
            system = TransactionSystem(
                [ManagedObject(adt, adt.nrbc_conflict(), "UIP")]
            )
            scripts = []
            for i in range(4):
                steps = []
                for _ in range(2):
                    if rng.random() < 0.5:
                        steps.append(
                            ("REC", inv("savings.deposit", rng.choice([1, 2])))
                        )
                    else:
                        steps.append(("REC", inv("flags.insert", "a")))
                scripts.append(TransactionScript("T%d" % i, tuple(steps)))
            run_scripts(system, scripts, seed=seed)
            assert is_dynamic_atomic(system.history(), adt)
