"""Unit tests for the set ADT and its asymmetric observation conflicts."""

import pytest

from repro.adts import SetADT
from repro.adts.set_adt import (
    DELETE,
    INSERT,
    MEMBER_FALSE,
    MEMBER_TRUE,
    SET_NFC_MARKS,
    SET_NRBC_MARKS,
)
from repro.analysis.finite import is_finite_state
from repro.core.events import inv


@pytest.fixture
def s():
    return SetADT(domain=("a", "b"))


class TestSpec:
    def test_initially_empty(self, s):
        assert s.initial_state() == frozenset()

    def test_insert_idempotent(self, s):
        once = s.states_after((s.insert("a"),))
        twice = s.states_after((s.insert("a"), s.insert("a")))
        assert once == twice == frozenset({frozenset({"a"})})

    def test_delete_idempotent(self, s):
        assert s.states_after((s.delete("a"),)) == frozenset({frozenset()})

    def test_member_observes(self, s):
        assert s.responses((), inv("member", "a")) == {False}
        assert s.responses((s.insert("a"),), inv("member", "a")) == {True}

    def test_member_does_not_mutate(self, s):
        seq = (s.insert("a"), s.member_true("a"))
        assert s.states_after(seq) == frozenset({frozenset({"a"})})

    def test_elements_outside_domain_disabled(self, s):
        assert s.responses((), inv("insert", "zzz")) == frozenset()

    def test_finite_state(self, s):
        assert is_finite_state(s, s.invocation_alphabet())


class TestClassify:
    def test_labels(self, s):
        assert s.classify(s.insert("a")) == INSERT
        assert s.classify(s.delete("a")) == DELETE
        assert s.classify(s.member_true("a")) == MEMBER_TRUE
        assert s.classify(s.member_false("a")) == MEMBER_FALSE


class TestElementRefinement:
    """Conflicts apply per element: different elements never conflict."""

    def test_same_element_conflicts(self, s):
        nfc = s.nfc_conflict()
        assert nfc.conflicts(s.insert("a"), s.delete("a"))

    def test_different_elements_free(self, s):
        nfc = s.nfc_conflict()
        nrbc = s.nrbc_conflict()
        assert not nfc.conflicts(s.insert("a"), s.delete("b"))
        assert not nrbc.conflicts(s.insert("a"), s.delete("b"))

    def test_checker_confirms_cross_element_commutes(self, s):
        checker = s.build_checker()
        assert checker.commute_forward(s.insert("a"), s.delete("b"))
        assert checker.right_commutes_backward(s.insert("a"), s.delete("b"))


class TestAsymmetricObservations:
    """The set's own incomparability witnesses."""

    def test_nfc_only_pairs(self, s):
        marks_nfc = frozenset(SET_NFC_MARKS)
        marks_nrbc = frozenset(SET_NRBC_MARKS)
        assert (MEMBER_FALSE, INSERT) in marks_nfc - marks_nrbc
        assert (MEMBER_TRUE, DELETE) in marks_nfc - marks_nrbc

    def test_nrbc_only_pairs(self, s):
        marks_nfc = frozenset(SET_NFC_MARKS)
        marks_nrbc = frozenset(SET_NRBC_MARKS)
        assert (MEMBER_TRUE, INSERT) in marks_nrbc - marks_nfc
        assert (MEMBER_FALSE, DELETE) in marks_nrbc - marks_nfc

    def test_insert_member_true_commute_forward(self, s):
        checker = s.build_checker()
        assert checker.commute_forward(s.insert("a"), s.member_true("a"))

    def test_member_true_cannot_push_before_insert(self, s):
        checker = s.build_checker()
        violation = checker.rbc_violation(s.member_true("a"), s.insert("a"))
        assert violation is not None

    def test_insert_can_push_before_member_true(self, s):
        checker = s.build_checker()
        assert checker.right_commutes_backward(s.insert("a"), s.member_true("a"))

    def test_vacuous_member_false_after_insert(self, s):
        """member-false right after an insert is never legal, so the RBC
        condition holds vacuously for (member-false, insert)."""
        checker = s.build_checker()
        assert checker.right_commutes_backward(s.member_false("a"), s.insert("a"))
