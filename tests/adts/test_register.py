"""Unit tests for the read/write register (the classical rw model)."""

import pytest

from repro.adts import Register
from repro.adts.register import READ, REGISTER_MARKS, WRITE
from repro.analysis.finite import ExactChecker, is_finite_state
from repro.core.events import inv


@pytest.fixture
def reg():
    return Register(domain=("u", "v"), initial="u")


class TestSpec:
    def test_initial_value(self, reg):
        assert reg.initial_state() == "u"

    def test_initial_must_be_in_domain(self):
        with pytest.raises(ValueError):
            Register(domain=("a",), initial="z")

    def test_write_effect(self, reg):
        assert reg.states_after((reg.write("v"),)) == frozenset({"v"})

    def test_read_reports_current(self, reg):
        assert reg.responses((), inv("read")) == {"u"}
        assert reg.responses((reg.write("v"),), inv("read")) == {"v"}

    def test_write_outside_domain_disabled(self, reg):
        assert reg.responses((), inv("write", "zzz")) == frozenset()

    def test_last_writer_wins(self, reg):
        seq = (reg.write("v"), reg.write("u"))
        assert reg.states_after(seq) == frozenset({"u"})


class TestFiniteness:
    def test_register_is_finite_state(self, reg):
        assert is_finite_state(reg, reg.invocation_alphabet())

    def test_exact_checker_matches_marks(self, reg):
        checker = ExactChecker(reg, reg.invocation_alphabet())
        classes = reg.operation_classes()
        assert checker.forward_table(classes).marks == frozenset(REGISTER_MARKS)
        assert checker.backward_table(classes).marks == frozenset(REGISTER_MARKS)


class TestClassicalModel:
    """NFC = NRBC = the rw matrix: recovery choice is irrelevant here."""

    def test_fc_equals_rbc(self, reg):
        assert frozenset(REGISTER_MARKS) == frozenset(REGISTER_MARKS)
        checker = reg.build_checker()
        classes = reg.operation_classes()
        assert checker.forward_table(classes).marks == checker.backward_table(
            classes
        ).marks

    def test_reads_commute(self, reg):
        assert not reg.nfc_conflict().conflicts(reg.read("u"), reg.read("u"))
        assert not reg.nrbc_conflict().conflicts(reg.read("u"), reg.read("u"))

    def test_writes_conflict(self, reg):
        assert reg.nfc_conflict().conflicts(reg.write("u"), reg.write("v"))
        assert reg.nrbc_conflict().conflicts(reg.write("u"), reg.write("v"))

    def test_classify(self, reg):
        assert reg.classify(reg.write("u")) == WRITE
        assert reg.classify(reg.read("u")) == READ
