"""Unit tests for the counter ADT (the FC = RBC control case)."""

import pytest

from repro.adts import Counter
from repro.adts.counter import COUNTER_MARKS, DECREMENT, INCREMENT, READ
from repro.core.events import inv


@pytest.fixture
def ctr():
    return Counter()


class TestSpec:
    def test_initial_zero(self, ctr):
        assert ctr.initial_state() == 0

    def test_increment(self, ctr):
        assert ctr.states_after((ctr.increment(2),)) == frozenset({2})

    def test_decrement_can_go_negative(self, ctr):
        assert ctr.states_after((ctr.decrement(2),)) == frozenset({-2})

    def test_read_reports_value(self, ctr):
        assert ctr.responses((ctr.increment(1),), inv("read")) == {1}

    def test_wrong_read_illegal(self, ctr):
        assert not ctr.is_legal((ctr.read(3),))

    def test_nonpositive_domain_rejected(self):
        with pytest.raises(ValueError):
            Counter(domain=(0,))


class TestClassifyAndUndo:
    def test_classify(self, ctr):
        assert ctr.classify(ctr.increment(1)) == INCREMENT
        assert ctr.classify(ctr.decrement(1)) == DECREMENT
        assert ctr.classify(ctr.read(0)) == READ

    def test_undo_round_trips(self, ctr):
        for operation in (ctr.increment(2), ctr.decrement(1), ctr.read(5)):
            assert ctr.undo(ctr.apply(5, operation) if operation.name != "read" else 5, operation) == 5

    def test_supports_logical_undo(self, ctr):
        assert ctr.supports_logical_undo


class TestFcEqualsRbc:
    """The counter's punchline: both recovery methods need the same conflicts."""

    def test_matrices_identical(self, ctr):
        checker = ctr.build_checker()
        classes = ctr.operation_classes()
        assert checker.forward_table(classes).marks == checker.backward_table(
            classes
        ).marks

    def test_updates_commute_both_ways(self, ctr):
        checker = ctr.build_checker()
        assert checker.commute_forward(ctr.increment(1), ctr.decrement(2))
        assert checker.right_commutes_backward(ctr.increment(1), ctr.decrement(2))

    def test_read_conflicts_both_ways(self, ctr):
        nfc, nrbc = ctr.nfc_conflict(), ctr.nrbc_conflict()
        assert nfc.conflicts(ctr.read(0), ctr.increment(1))
        assert nrbc.conflicts(ctr.read(0), ctr.increment(1))
        assert nfc.conflicts(ctr.increment(1), ctr.read(0))
        assert nrbc.conflicts(ctr.increment(1), ctr.read(0))

    def test_marks_constant(self):
        assert (INCREMENT, READ) in COUNTER_MARKS
        assert (INCREMENT, DECREMENT) not in COUNTER_MARKS
