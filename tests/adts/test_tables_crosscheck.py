"""Cross-validation: every hand-derived conflict matrix equals the checker's.

Each ADT module documents an analytic NFC/NRBC matrix, derived by hand
the way the paper derives Figures 6-1 and 6-2.  The mechanical
macro-state checker re-derives both tables from the serial specification
alone; this module asserts the two routes agree exactly, ADT by ADT.
"""

import pytest

from repro.adts import (
    BankAccount,
    Counter,
    EscrowAccount,
    FifoQueue,
    KVStore,
    Register,
    SemiQueue,
    SetADT,
    Stack,
)
from repro.adts import PriorityQueue
from repro.adts.bank_account import FIGURE_6_1_MARKS, FIGURE_6_2_MARKS
from repro.adts.counter import COUNTER_MARKS
from repro.adts.priority_queue import PQ_NFC_MARKS, PQ_NRBC_MARKS
from repro.adts.escrow import ESCROW_NFC_MARKS, ESCROW_NRBC_MARKS
from repro.adts.fifo_queue import QUEUE_NFC_MARKS, QUEUE_NRBC_MARKS
from repro.adts.kv_store import KV_NFC_MARKS, KV_NRBC_MARKS
from repro.adts.register import REGISTER_MARKS
from repro.adts.semiqueue import SEMIQUEUE_NFC_MARKS, SEMIQUEUE_NRBC_MARKS
from repro.adts.set_adt import SET_NFC_MARKS, SET_NRBC_MARKS
from repro.adts.stack import STACK_NFC_MARKS, STACK_NRBC_MARKS

CASES = [
    pytest.param(
        lambda: BankAccount(),
        FIGURE_6_1_MARKS,
        FIGURE_6_2_MARKS,
        id="bank-account",
    ),
    pytest.param(lambda: Counter(), COUNTER_MARKS, COUNTER_MARKS, id="counter"),
    pytest.param(
        lambda: Register(), REGISTER_MARKS, REGISTER_MARKS, id="register"
    ),
    pytest.param(lambda: SetADT(), SET_NFC_MARKS, SET_NRBC_MARKS, id="set"),
    pytest.param(lambda: KVStore(), KV_NFC_MARKS, KV_NRBC_MARKS, id="kv-store"),
    pytest.param(
        lambda: FifoQueue(), QUEUE_NFC_MARKS, QUEUE_NRBC_MARKS, id="fifo-queue"
    ),
    pytest.param(
        lambda: SemiQueue(),
        SEMIQUEUE_NFC_MARKS,
        SEMIQUEUE_NRBC_MARKS,
        id="semiqueue",
    ),
    pytest.param(lambda: Stack(), STACK_NFC_MARKS, STACK_NRBC_MARKS, id="stack"),
    pytest.param(
        lambda: EscrowAccount(),
        ESCROW_NFC_MARKS,
        ESCROW_NRBC_MARKS,
        id="escrow",
    ),
    pytest.param(
        lambda: PriorityQueue(),
        PQ_NFC_MARKS,
        PQ_NRBC_MARKS,
        id="priority-queue",
    ),
]


@pytest.mark.parametrize("factory, nfc_marks, nrbc_marks", CASES)
def test_forward_table_matches_hand_derivation(factory, nfc_marks, nrbc_marks):
    adt = factory()
    checker = adt.build_checker()
    table = checker.forward_table(adt.operation_classes())
    assert table.marks == frozenset(nfc_marks), (
        "extra: %s missing: %s"
        % (
            sorted(table.marks - frozenset(nfc_marks)),
            sorted(frozenset(nfc_marks) - table.marks),
        )
    )


@pytest.mark.parametrize("factory, nfc_marks, nrbc_marks", CASES)
def test_backward_table_matches_hand_derivation(factory, nfc_marks, nrbc_marks):
    adt = factory()
    checker = adt.build_checker()
    table = checker.backward_table(adt.operation_classes())
    assert table.marks == frozenset(nrbc_marks), (
        "extra: %s missing: %s"
        % (
            sorted(table.marks - frozenset(nrbc_marks)),
            sorted(frozenset(nrbc_marks) - table.marks),
        )
    )


@pytest.mark.parametrize("factory, nfc_marks, nrbc_marks", CASES)
def test_forward_tables_are_symmetric(factory, nfc_marks, nrbc_marks):
    """FC is symmetric (Lemma 8), so every NFC class table must be too."""
    marks = frozenset(nfc_marks)
    assert all((c, r) in marks for (r, c) in marks)


@pytest.mark.parametrize("factory, nfc_marks, nrbc_marks", CASES)
def test_analytic_relations_agree_with_marks(factory, nfc_marks, nrbc_marks):
    """The packaged ConflictRelation objects implement exactly the matrices
    at class level (argument refinements may remove, never add)."""
    adt = factory()
    nfc = adt.nfc_conflict()
    nrbc = adt.nrbc_conflict()
    for cls_row in adt.operation_classes():
        for cls_col in adt.operation_classes():
            pair = (cls_row.label, cls_col.label)
            row_op = cls_row.instances[0]
            col_op = cls_col.instances[0]
            if pair not in frozenset(nfc_marks):
                assert not nfc.conflicts(row_op, col_op)
            if pair not in frozenset(nrbc_marks):
                assert not nrbc.conflicts(row_op, col_op)
