"""Unit tests for the key-value store and the escrow account."""

import pytest

from repro.adts import EscrowAccount, KVStore
from repro.adts.escrow import ESCROW_NFC_MARKS, ESCROW_NRBC_MARKS
from repro.adts.kv_store import GET_HIT, GET_MISS, PUT, REMOVE
from repro.core.events import inv


class TestKVStoreSpec:
    @pytest.fixture
    def kv(self):
        return KVStore(keys=("k1", "k2"), values=("u", "v"))

    def test_initially_empty(self, kv):
        assert kv.responses((), inv("get", "k1")) == {None}

    def test_put_then_get(self, kv):
        assert kv.responses((kv.put("k1", "u"),), inv("get", "k1")) == {"u"}

    def test_put_overwrites(self, kv):
        seq = (kv.put("k1", "u"), kv.put("k1", "v"))
        assert kv.responses(seq, inv("get", "k1")) == {"v"}

    def test_remove(self, kv):
        seq = (kv.put("k1", "u"), kv.remove("k1"))
        assert kv.responses(seq, inv("get", "k1")) == {None}

    def test_keys_independent(self, kv):
        seq = (kv.put("k1", "u"),)
        assert kv.responses(seq, inv("get", "k2")) == {None}

    def test_unknown_key_disabled(self, kv):
        assert kv.responses((), inv("put", "zzz", "u")) == frozenset()

    def test_classify(self, kv):
        assert kv.classify(kv.put("k1", "u")) == PUT
        assert kv.classify(kv.get("k1", "u")) == GET_HIT
        assert kv.classify(kv.get_miss("k1")) == GET_MISS
        assert kv.classify(kv.remove("k1")) == REMOVE

    def test_cross_key_conflicts_refined_away(self, kv):
        nfc = kv.nfc_conflict()
        assert nfc.conflicts(kv.put("k1", "u"), kv.put("k1", "v"))
        assert not nfc.conflicts(kv.put("k1", "u"), kv.put("k2", "v"))

    def test_get_miss_put_asymmetry(self, kv):
        """(put, get-miss) ∈ NRBC but (get-miss, put) ∉ NRBC (vacuous)."""
        nrbc = kv.nrbc_conflict()
        assert nrbc.conflicts(kv.put("k1", "u"), kv.get_miss("k1"))
        assert not nrbc.conflicts(kv.get_miss("k1"), kv.put("k1", "u"))

    def test_checker_confirms_vacuous_direction(self, kv):
        checker = kv.build_checker()
        assert checker.right_commutes_backward(kv.get_miss("k1"), kv.put("k1", "u"))


class TestEscrowSpec:
    @pytest.fixture
    def esc(self):
        return EscrowAccount(opening=5)

    def test_opening_amount(self, esc):
        assert esc.initial_state() == 5

    def test_negative_opening_rejected(self):
        with pytest.raises(ValueError):
            EscrowAccount(opening=-1)

    def test_credit(self, esc):
        assert esc.states_after((esc.credit(2),)) == frozenset({7})

    def test_debit_guarded(self, esc):
        assert esc.responses((), inv("debit", 3)) == {"ok"}
        assert esc.responses((), inv("debit", 9)) == {"no"}

    def test_no_read_operation(self, esc):
        assert all(
            invocation.name in ("credit", "debit")
            for invocation in esc.invocation_alphabet()
        )

    def test_undo(self, esc):
        assert esc.undo(7, esc.credit(2)) == 5
        assert esc.undo(3, esc.debit_ok(2)) == 5
        assert esc.undo(5, esc.debit_no(9)) == 5

    def test_matches_bank_account_sans_balance(self):
        """The escrow matrices are the bank account's figures with the
        balance row/column deleted (credit≙deposit, debit≙withdraw)."""
        from repro.adts.bank_account import FIGURE_6_1_MARKS, FIGURE_6_2_MARKS

        rename = {
            "deposit(i)/ok": "credit(i)/ok",
            "withdraw(i)/OK": "debit(i)/OK",
            "withdraw(i)/NO": "debit(i)/NO",
        }

        def project(marks):
            return frozenset(
                (rename[r], rename[c])
                for (r, c) in marks
                if r in rename and c in rename
            )

        assert project(FIGURE_6_1_MARKS) == frozenset(ESCROW_NFC_MARKS)
        assert project(FIGURE_6_2_MARKS) == frozenset(ESCROW_NRBC_MARKS)

    def test_debits_commute_backward_but_not_forward(self, esc):
        checker = esc.build_checker()
        assert checker.right_commutes_backward(esc.debit_ok(1), esc.debit_ok(2))
        assert not checker.commute_forward(esc.debit_ok(1), esc.debit_ok(2))
