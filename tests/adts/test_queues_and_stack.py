"""Unit tests for the FIFO queue, the semiqueue and the stack."""

import pytest

from repro.adts import FifoQueue, SemiQueue, Stack
from repro.core.events import inv


class TestFifoQueueSpec:
    @pytest.fixture
    def q(self):
        return FifoQueue(domain=("a", "b"))

    def test_initially_empty(self, q):
        assert q.responses((), inv("deq")) == {"empty"}

    def test_fifo_order(self, q):
        seq = (q.enq("a"), q.enq("b"))
        assert q.responses(seq, inv("deq")) == {"a"}
        assert q.responses(seq + (q.deq("a"),), inv("deq")) == {"b"}

    def test_deq_wrong_item_illegal(self, q):
        assert not q.is_legal((q.enq("a"), q.deq("b")))

    def test_deq_empty_after_drain(self, q):
        seq = (q.enq("a"), q.deq("a"))
        assert q.responses(seq, inv("deq")) == {"empty"}

    def test_enq_deq_head_tail_independence(self, q):
        """The queue's concurrency source: enq commutes forward with deq-ok."""
        checker = q.build_checker()
        assert checker.commute_forward(q.enq("b"), q.deq("a"))

    def test_enq_order_observable(self, q):
        checker = q.build_checker()
        assert not checker.commute_forward(q.enq("a"), q.enq("b"))

    def test_deq_ok_cannot_push_before_enq(self, q):
        checker = q.build_checker()
        assert not checker.right_commutes_backward(q.deq("a"), q.enq("a"))

    def test_deq_empty_vacuous_after_enq(self, q):
        checker = q.build_checker()
        assert checker.right_commutes_backward(q.deq_empty(), q.enq("a"))


class TestSemiQueueSpec:
    @pytest.fixture
    def sq(self):
        return SemiQueue(domain=("a", "b"))

    def test_nondeterministic_deq(self, sq):
        seq = (sq.enq("a"), sq.enq("b"))
        assert sq.responses(seq, inv("deq")) == {"a", "b"}

    def test_multiset_semantics(self, sq):
        seq = (sq.enq("a"), sq.enq("a"), sq.deq("a"))
        assert sq.responses(seq, inv("deq")) == {"a"}

    def test_deq_missing_item_illegal(self, sq):
        assert not sq.is_legal((sq.enq("a"), sq.deq("b")))

    def test_enqs_commute_backward_unlike_fifo(self, sq):
        checker = sq.build_checker()
        assert checker.right_commutes_backward(sq.enq("a"), sq.enq("b"))
        fifo = FifoQueue(domain=("a", "b"))
        fifo_checker = fifo.build_checker()
        assert not fifo_checker.right_commutes_backward(fifo.enq("a"), fifo.enq("b"))

    def test_deqs_commute_backward(self, sq):
        checker = sq.build_checker()
        assert checker.right_commutes_backward(sq.deq("a"), sq.deq("a"))

    def test_same_item_deqs_conflict_forward(self, sq):
        checker = sq.build_checker()
        assert not checker.commute_forward(sq.deq("a"), sq.deq("a"))

    def test_apply_uses_response(self, sq):
        state = sq.apply(sq.apply((), sq.enq("a")), sq.enq("b"))
        assert sq.apply(state, sq.deq("b")) == ("a",)

    def test_apply_rejects_disabled(self, sq):
        with pytest.raises(ValueError):
            sq.apply((), sq.deq("a"))
        with pytest.raises(ValueError):
            sq.apply(("a",), sq.deq_empty())

    def test_undo_round_trip(self, sq):
        state = ("a", "b")
        for operation in (sq.enq("a"), sq.deq("b")):
            after = sq.apply(state, operation)
            assert sorted(sq.undo(after, operation)) == sorted(state)

    def test_supports_logical_undo(self, sq):
        assert sq.supports_logical_undo


class TestStackSpec:
    @pytest.fixture
    def st(self):
        return Stack(domain=("a", "b"))

    def test_lifo_order(self, st):
        seq = (st.push("a"), st.push("b"))
        assert st.responses(seq, inv("pop")) == {"b"}

    def test_pop_empty(self, st):
        assert st.responses((), inv("pop")) == {"empty"}

    def test_pop_wrong_item_illegal(self, st):
        assert not st.is_legal((st.push("a"), st.pop("b")))

    def test_pushes_conflict_everywhere(self, st):
        checker = st.build_checker()
        assert not checker.commute_forward(st.push("a"), st.push("b"))
        assert not checker.right_commutes_backward(st.push("a"), st.push("b"))

    def test_same_item_push_pop_commute_forward(self, st):
        """push(x) then pop/x returns to the same state — ground-level
        commutation that the class table conservatively hides."""
        checker = st.build_checker()
        assert checker.commute_forward(st.push("a"), st.pop("a"))

    def test_cross_item_push_pop_conflict(self, st):
        checker = st.build_checker()
        assert not checker.commute_forward(st.push("b"), st.pop("a"))

    def test_stack_strictly_more_conflicting_than_semiqueue(self):
        """Same alphabet shape, very different concurrency: the stack's
        NRBC marks strictly contain the semiqueue's."""
        from repro.adts.semiqueue import SEMIQUEUE_NRBC_MARKS
        from repro.adts.stack import STACK_NRBC_MARKS

        semi = {
            (r.replace("enq", "push").replace("deq", "pop"),
             c.replace("enq", "push").replace("deq", "pop"))
            for (r, c) in SEMIQUEUE_NRBC_MARKS
        }
        stack = set(STACK_NRBC_MARKS)
        assert semi < stack
