"""Unit tests for the bank-account ADT (the paper's M(BA))."""

import pytest

from repro.adts import BankAccount
from repro.adts.bank_account import (
    BALANCE,
    DEPOSIT,
    FIGURE_6_1_MARKS,
    FIGURE_6_2_MARKS,
    WITHDRAW_NO,
    WITHDRAW_OK,
)
from repro.core.events import inv


@pytest.fixture
def ba():
    return BankAccount()


class TestSpec:
    def test_initial_balance_zero(self, ba):
        assert ba.initial_state() == 0

    def test_opening_balance(self):
        assert BankAccount(opening=7).initial_state() == 7

    def test_negative_opening_rejected(self):
        with pytest.raises(ValueError):
            BankAccount(opening=-1)

    def test_nonpositive_amounts_rejected(self):
        with pytest.raises(ValueError):
            BankAccount(domain=(0, 1))

    def test_deposit_effect(self, ba):
        assert ba.states_after((ba.deposit(5),)) == frozenset({5})

    def test_withdraw_ok_requires_funds(self, ba):
        assert not ba.is_legal((ba.withdraw_ok(1),))
        assert ba.is_legal((ba.deposit(1), ba.withdraw_ok(1)))

    def test_withdraw_no_requires_shortfall(self, ba):
        assert ba.is_legal((ba.withdraw_no(1),))
        assert not ba.is_legal((ba.deposit(2), ba.withdraw_no(1),))

    def test_balance_reports_state(self, ba):
        assert ba.responses((ba.deposit(3),), inv("balance")) == {3}

    def test_balance_never_negative(self, ba):
        # withdraw(i) with ok keeps s >= 0 by precondition
        assert not ba.is_legal((ba.deposit(1), ba.withdraw_ok(2)))

    def test_zero_amount_deposit_disabled(self, ba):
        assert ba.responses((), inv("deposit", 0)) == frozenset()

    def test_apply_deterministic(self, ba):
        assert ba.apply(0, ba.deposit(5)) == 5
        assert ba.apply(5, ba.withdraw_ok(3)) == 2

    def test_apply_rejects_disabled(self, ba):
        with pytest.raises(ValueError):
            ba.apply(0, ba.withdraw_ok(3))


class TestClassification:
    def test_classify_all_classes(self, ba):
        assert ba.classify(ba.deposit(1)) == DEPOSIT
        assert ba.classify(ba.withdraw_ok(1)) == WITHDRAW_OK
        assert ba.classify(ba.withdraw_no(1)) == WITHDRAW_NO
        assert ba.classify(ba.balance(0)) == BALANCE

    def test_classify_rejects_foreign(self, ba):
        from repro.core.events import op

        with pytest.raises(ValueError):
            ba.classify(op("BA", "frobnicate"))

    def test_invocation_alphabet_covers_domain(self, ba):
        alphabet = ba.invocation_alphabet()
        assert inv("balance") in alphabet
        for i in (1, 2, 3):
            assert inv("deposit", i) in alphabet
            assert inv("withdraw", i) in alphabet

    def test_ground_alphabet_classified_consistently(self, ba):
        for cls in ba.operation_classes():
            for operation in cls.instances:
                assert ba.classify(operation) == cls.label


class TestUndo:
    def test_undo_deposit(self, ba):
        assert ba.undo(5, ba.deposit(5)) == 0

    def test_undo_withdraw_ok(self, ba):
        assert ba.undo(0, ba.withdraw_ok(3)) == 3

    def test_undo_withdraw_no_noop(self, ba):
        assert ba.undo(2, ba.withdraw_no(5)) == 2

    def test_undo_balance_noop(self, ba):
        assert ba.undo(2, ba.balance(2)) == 2

    def test_supports_logical_undo(self, ba):
        assert ba.supports_logical_undo

    def test_undo_inverts_apply(self, ba):
        for operation in (ba.deposit(2), ba.withdraw_ok(1), ba.withdraw_no(9)):
            state = 5
            assert ba.undo(ba.apply(state, operation), operation) == state


class TestAnalyticRelations:
    def test_nfc_matches_figure_6_1(self, ba):
        matrix = ba.nfc_conflict().matrix
        assert matrix == frozenset(FIGURE_6_1_MARKS)

    def test_nrbc_matches_figure_6_2(self, ba):
        matrix = ba.nrbc_conflict().matrix
        assert matrix == frozenset(FIGURE_6_2_MARKS)

    def test_figure_6_1_is_symmetric(self):
        marks = frozenset(FIGURE_6_1_MARKS)
        assert all((c, r) in marks for (r, c) in marks)

    def test_figure_6_2_is_not_symmetric(self):
        marks = frozenset(FIGURE_6_2_MARKS)
        assert any((c, r) not in marks for (r, c) in marks)

    def test_figures_incomparable(self):
        f1 = frozenset(FIGURE_6_1_MARKS)
        f2 = frozenset(FIGURE_6_2_MARKS)
        assert f1 - f2 and f2 - f1

    def test_nfc_conflict_predicate(self, ba):
        nfc = ba.nfc_conflict()
        assert nfc.conflicts(ba.withdraw_ok(1), ba.withdraw_ok(2))
        assert not nfc.conflicts(ba.deposit(1), ba.deposit(2))
        assert nfc.conflicts(ba.deposit(1), ba.balance(0))

    def test_nrbc_conflict_predicate(self, ba):
        nrbc = ba.nrbc_conflict()
        assert not nrbc.conflicts(ba.withdraw_ok(1), ba.withdraw_ok(2))
        assert nrbc.conflicts(ba.withdraw_ok(1), ba.deposit(2))
        assert not nrbc.conflicts(ba.deposit(2), ba.withdraw_ok(1))
