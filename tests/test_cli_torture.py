"""CLI tests for ``repro torture``: exit codes, knobs, reproducibility."""

from repro.cli import main


def run(argv, capsys):
    code = main(argv)
    return code, capsys.readouterr().out


class TestTortureCommand:
    def test_clean_run_exits_zero(self, capsys):
        code, out = run(
            ["torture", "--adt", "bank", "--schedules", "12", "--seed", "3"],
            capsys,
        )
        assert code == 0
        assert "all invariants held" in out
        assert "12 schedules" in out

    def test_schedules_flag_is_honored(self, capsys):
        _, out = run(
            ["torture", "--adt", "counter", "--schedules", "7"], capsys
        )
        assert "torture: 7 schedules" in out

    def test_recovery_filter(self, capsys):
        _, out = run(
            [
                "torture",
                "--adt",
                "bank",
                "--recovery",
                "du",
                "--schedules",
                "4",
            ],
            capsys,
        )
        assert "bank/DU" in out
        assert "UIP" not in out

    def test_adt_list_builds_matrix(self, capsys):
        _, out = run(
            ["torture", "--adt", "bank,fifo", "--schedules", "10"], capsys
        )
        # bank supports logical undo (3 configs); fifo does not (2).
        for label in (
            "bank/DU",
            "bank/UIP/replay-winners",
            "bank/UIP/redo-undo",
            "fifo/DU",
            "fifo/UIP/replay-winners",
        ):
            assert label in out

    def test_unknown_adt_rejected(self, capsys):
        try:
            main(["torture", "--adt", "btree", "--schedules", "1"])
        except SystemExit as exc:
            assert "btree" in str(exc)
        else:
            raise AssertionError("unknown ADT was accepted")

    def test_same_seed_is_reproducible(self, capsys):
        argv = ["torture", "--adt", "set", "--schedules", "9", "--seed", "77"]
        _, first = run(argv, capsys)
        _, second = run(argv, capsys)
        assert first == second

    def test_different_seeds_differ(self, capsys):
        base = ["torture", "--adt", "bank", "--schedules", "15"]
        _, a = run(base + ["--seed", "1"], capsys)
        _, b = run(base + ["--seed", "2"], capsys)
        assert a != b

    def test_negative_control_exits_one(self, capsys):
        code, out = run(
            [
                "torture",
                "--adt",
                "bank",
                "--schedules",
                "6",
                "--inject-bug",
                "skip-commit-force",
            ],
            capsys,
        )
        assert code == 1
        assert "VIOLATIONS" in out
        assert "schedule:" in out  # each violation names its fault plan

    def test_checkpoint_knob(self, capsys):
        code, out = run(
            [
                "torture",
                "--adt",
                "escrow",
                "--schedules",
                "8",
                "--checkpoint-every",
                "5",
            ],
            capsys,
        )
        assert code == 0
        assert "all invariants held" in out


class TestSiteCrashCampaign:
    def test_sites_runs_the_site_crash_campaign(self, capsys):
        code, out = run(
            [
                "torture",
                "--adt", "counter",
                "--recovery", "du",
                "--sites", "2",
                "--schedules", "4",
                "--transactions", "4",
            ],
            capsys,
        )
        assert code == 0
        assert "counter/DU/x2" in out
        assert "all invariants held" in out

    def test_skip_catchup_negative_control_exits_one(self, capsys):
        code, out = run(
            [
                "torture",
                "--adt", "counter",
                "--recovery", "du",
                "--sites", "2",
                "--schedules", "8",
                "--transactions", "4",
                "--inject-bug", "skip-catchup",
            ],
            capsys,
        )
        assert code == 1
        assert "VIOLATIONS" in out or "violation" in out.lower()

    def test_skip_catchup_requires_sites(self, capsys):
        import pytest

        with pytest.raises(SystemExit, match="needs --sites"):
            main(["torture", "--inject-bug", "skip-catchup"])

    def test_log_fault_bug_rejected_with_sites(self, capsys):
        import pytest

        with pytest.raises(SystemExit, match="skip-catchup"):
            main(
                [
                    "torture",
                    "--sites", "2",
                    "--inject-bug", "skip-commit-force",
                ]
            )
