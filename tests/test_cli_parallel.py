"""CLI tests for ``--workers`` and ``--seed-base`` on run/compare/torture."""

import pytest

from repro.cli import main


def _out(capsys) -> str:
    return capsys.readouterr().out


class TestValidation:
    @pytest.mark.parametrize(
        "argv",
        [
            ["compare", "hotspot", "--workers", "0"],
            ["run", "bank", "--workers", "0"],
            ["torture", "--adt", "bank", "--schedules", "2", "--workers", "-1"],
        ],
    )
    def test_workers_floor(self, argv):
        with pytest.raises(SystemExit, match="--workers must be >= 1"):
            main(argv)

    @pytest.mark.parametrize(
        "argv",
        [
            ["compare", "hotspot", "--seed-base", "-1"],
            ["run", "bank", "--seed-base", "-2"],
            ["torture", "--adt", "bank", "--schedules", "2", "--seed-base", "-1"],
        ],
    )
    def test_seed_base_floor(self, argv):
        with pytest.raises(SystemExit, match="--seed-base must be >= 0"):
            main(argv)


class TestSeedBase:
    def test_compare_offsets_the_seed_range(self, capsys):
        args = ["compare", "hotspot", "--transactions", "4", "--seeds", "2"]
        assert main(args + ["--seed-base", "5"]) == 0
        shifted = _out(capsys)
        assert main(args) == 0
        base = _out(capsys)
        assert shifted != base  # different seeds, different numbers

    def test_run_offset_equals_plain_seed(self, capsys):
        args = ["run", "bank", "--transactions", "4"]
        assert main(args + ["--seed", "2", "--seed-base", "3"]) == 0
        offset = _out(capsys)
        assert main(args + ["--seed", "5"]) == 0
        assert offset == _out(capsys)

    def test_torture_offset_equals_plain_seed(self, capsys):
        args = ["torture", "--adt", "bank", "--schedules", "4",
                "--transactions", "2"]
        assert main(args + ["--seed", "1", "--seed-base", "2"]) == 0
        offset = _out(capsys)
        assert main(args + ["--seed", "3"]) == 0
        assert offset == _out(capsys)


class TestWorkersByteIdentical:
    def test_compare(self, capsys):
        args = ["compare", "semiqueue", "--transactions", "4", "--seeds", "2"]
        assert main(args) == 0
        serial = _out(capsys)
        assert main(args + ["--workers", "2"]) == 0
        assert _out(capsys) == serial

    def test_run(self, capsys):
        args = ["run", "bank", "--transactions", "4", "--group-commit", "2"]
        assert main(args) == 0
        serial = _out(capsys)
        assert main(args + ["--workers", "2"]) == 0
        assert _out(capsys) == serial

    def test_torture(self, capsys):
        args = ["torture", "--adt", "bank", "--recovery", "du",
                "--schedules", "6", "--transactions", "2"]
        assert main(args) == 0
        serial = _out(capsys)
        assert main(args + ["--workers", "2"]) == 0
        assert _out(capsys) == serial

    def test_torture_negative_control_still_detected(self, capsys):
        args = ["torture", "--adt", "bank", "--schedules", "4",
                "--inject-bug", "skip-commit-force", "--workers", "2"]
        assert main(args) == 1
        assert "VIOLATIONS" in _out(capsys)
