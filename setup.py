"""Setup shim: enables legacy editable installs (`pip install -e .`).

The project metadata lives in pyproject.toml; this file exists because
the build environment has no `wheel` package, so pip's PEP 660 editable
path is unavailable and the classic `setup.py develop` path is used
instead.
"""

from setuptools import setup

setup()
