"""Docs CLI gate: every fenced ``repro ...`` invocation must parse.

Usage::

    python scripts/check_docs_cli.py [FILE ...]

With no arguments, checks ``README.md`` and every ``docs/*.md`` in the
repository.  The script walks fenced code blocks, joins backslash
continuations, extracts each ``repro ...`` / ``python -m repro ...``
command (including ones embedded in shell plumbing like ``diff <(...)``),
and feeds its arguments to the real argparse parser.  A command that no
longer parses — a renamed flag, a dropped subcommand, a typo'd example —
fails the build, so the documentation cannot drift ahead of or behind
the CLI.  This is ``--help``-level validation: flags and subcommands
must exist and typed values must convert, but nothing executes and no
files need to exist.
"""

from __future__ import annotations

import pathlib
import re
import shlex
import sys
from typing import Iterator, List, Tuple

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.cli import build_parser  # noqa: E402

COMMAND_RE = re.compile(r"(?:python -m |python3 -m )?repro\s")
# a command stops at shell plumbing that follows it on the same line
STOP_RE = re.compile(r"\s(?:\||>|>>|&&|;|2>)\s?")


def fenced_blocks(text: str) -> Iterator[str]:
    fence = None
    lines: List[str] = []
    for line in text.splitlines():
        stripped = line.strip()
        if fence is None:
            if stripped.startswith("```"):
                fence = stripped
                lines = []
        elif stripped == "```":
            fence = None
            yield "\n".join(lines)
        else:
            lines.append(line)


def join_continuations(block: str) -> List[str]:
    joined: List[str] = []
    for line in block.splitlines():
        if joined and joined[-1].endswith("\\"):
            joined[-1] = joined[-1][:-1].rstrip() + " " + line.strip()
        else:
            joined.append(line.rstrip())
    return joined


def extract_commands(path: pathlib.Path) -> Iterator[Tuple[str, str]]:
    """Yield (display, argv-tail) pairs for every documented command."""
    for block in fenced_blocks(path.read_text()):
        for line in join_continuations(block):
            for match in COMMAND_RE.finditer(line):
                tail = line[match.end():]
                stop = STOP_RE.search(tail)
                if stop:
                    tail = tail[: stop.start()]
                # commands inside $(...) / <(...) substitutions end at
                # the closing paren; trailing # comments are shell, not
                # arguments
                tail = tail.split(")", 1)[0]
                tail = tail.split(" #", 1)[0].rstrip()
                display = "repro " + tail
                yield display, tail


def check_file(path: pathlib.Path) -> Tuple[int, List[str]]:
    parser = build_parser()
    checked = 0
    failures: List[str] = []
    for display, tail in extract_commands(path):
        checked += 1
        try:
            tokens = shlex.split(tail)
        except ValueError as exc:
            failures.append("%s: %s -- unparseable shell: %s"
                            % (path.name, display, exc))
            continue
        try:
            parser.parse_args(tokens)
        except SystemExit as exc:
            if exc.code not in (0, None):
                failures.append(
                    "%s: does not parse: %s" % (path.name, display)
                )
    return checked, failures


def main(argv: List[str]) -> int:
    if argv:
        paths = [pathlib.Path(a) for a in argv]
    else:
        paths = [REPO / "README.md"] + sorted((REPO / "docs").glob("*.md"))
    total = 0
    failures: List[str] = []
    for path in paths:
        checked, fails = check_file(path)
        total += checked
        failures.extend(fails)
        print("check_docs_cli: %s: %d command(s)" % (path.name, checked))
    for failure in failures:
        print("check_docs_cli FAIL: %s" % failure)
    if total == 0:
        print("check_docs_cli FAIL: no fenced repro commands found at all "
              "(extractor broken?)")
        return 1
    print(
        "check_docs_cli: %d command(s) across %d file(s), %d failure(s)"
        % (total, len(paths), len(failures))
    )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
